"""Job execution on the shared engine: the service's warm core.

One :class:`JobRunner` owns the process-wide :class:`ResultCache` and a
small pool of :class:`EvaluationEngine` instances (one per measurement
seed — the engine's default seed is baked into its search-path cache
keys).  All engines share the one cache, and compiled variant sets are
persisted into it, so *any* overlap between jobs — across tenants, across
restarts — is a cache hit instead of a recompute or a re-measure.

The runner also enforces per-job cooperative cancellation: a single check
closure (client cancel + ``--timeout`` deadline) is installed thread-local
on the engine and on the job's scheduler for the duration of the run, so
one runaway study aborts at the next compile/measure boundary instead of
wedging its worker.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.analysis.flags import best_static_flags
from repro.analysis.speedups import average_speedups
from repro.gpu.platform import all_platforms
from repro.harness.study import StudyConfig, run_study
from repro.passes import OptimizationFlags
from repro.search.cache import ResultCache
from repro.search.engine import EvaluationEngine
from repro.search.scheduler import Scheduler
from repro.search.strategies import make_strategy
from repro.service.jobs import (
    DISPATCH_STRATEGY, Job, JobCancelled, STUDY_STRATEGY,
)

#: ``publish(event_dict)`` — the streaming sink a job's events land in.
Publish = Callable[[dict], None]


class JobRunner:
    """Execute :class:`JobSpec` work against the shared warm state."""

    def __init__(self, cache: Optional[ResultCache] = None,
                 results_dir: Optional[Path] = None, job_workers: int = 1):
        self.cache = cache if cache is not None else ResultCache()
        self.results_dir = Path(results_dir) if results_dir else None
        self.job_workers = max(1, int(job_workers))
        self._engines: Dict[int, EvaluationEngine] = {}

    def engine_for(self, seed: int) -> EvaluationEngine:
        """The shared engine for *seed* (created on first use).

        Engines are keyed by seed because the search path keys cache
        entries on the engine's own seed; every engine shares the one
        :class:`ResultCache`, so measurements and compiled variant sets
        cross seeds and jobs freely.
        """
        engine = self._engines.get(seed)
        if engine is None:
            engine = EvaluationEngine(platforms=all_platforms(), seed=seed,
                                      cache=self.cache)
            self._engines[seed] = engine
        return engine

    def work_snapshot(self) -> Dict[str, int]:
        """Total engine/cache work counters across every seed engine.

        The server diffs snapshots around each job to attribute work —
        which is how the warm-resubmit tests assert "zero compiles, zero
        measurements" end to end.
        """
        totals = {"frontends": 0, "compiles": 0, "measures": 0,
                  "cache_hits": self.cache.hits,
                  "cache_misses": self.cache.misses}
        for engine in self._engines.values():
            totals["frontends"] += engine.frontend_count
            totals["compiles"] += engine.compile_count
            totals["measures"] += engine.measure_count
        return totals

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, job: Job, publish: Publish) -> dict:
        """Execute *job* to completion; returns its summary dict.

        Raises :class:`JobCancelled` on cancel/timeout and lets real
        errors propagate — lifecycle bookkeeping belongs to the caller.
        """
        spec = job.spec
        deadline = (None if spec.timeout is None
                    else time.monotonic() + spec.timeout)

        def check() -> None:
            if job.cancel_event.is_set():
                raise JobCancelled("cancelled by client")
            if deadline is not None and time.monotonic() > deadline:
                raise JobCancelled(
                    f"timeout after {spec.timeout:g}s", timed_out=True)

        engine = self.engine_for(spec.seed)
        engine.set_cancel_check(check)
        try:
            if spec.strategy == STUDY_STRATEGY:
                return self._run_study(job, engine, check, publish)
            if spec.strategy == DISPATCH_STRATEGY:
                return self._run_dispatch(job, check, publish)
            return self._run_search(job, engine, publish)
        finally:
            engine.set_cancel_check(None)
            self.cache.flush()

    def _run_study(self, job: Job, engine: EvaluationEngine,
                   check: Callable[[], None], publish: Publish) -> dict:
        """The exhaustive per-variant study (paper protocol) as a job."""
        spec = job.spec
        platforms = spec.resolve_platforms()
        names = [p.name for p in platforms]

        def progress(position: int, total: int, shader_result) -> None:
            publish({
                "type": "case",
                "position": position,
                "total": total,
                "name": shader_result.name,
                "variants": shader_result.unique_variant_count,
                "best_pct": {
                    name: round(shader_result.best_speedup_pct(name), 4)
                    for name in names},
            })

        study = run_study(
            spec.cases(),
            StudyConfig(platforms=platforms, seed=spec.seed,
                        progress=progress),
            engine=engine,
            scheduler=Scheduler(self.job_workers, kind="process",
                                cancel_check=check))

        result_path = None
        if self.results_dir is not None:
            self.results_dir.mkdir(parents=True, exist_ok=True)
            path = self.results_dir / f"{job.id}.study.json"
            path.write_text(study.to_json())
            result_path = str(path)
        job.result_path = result_path

        return {
            "kind": "study",
            "shaders": len(study.shaders),
            "platforms": names,
            "result_path": result_path,
            "speedups": [
                {"platform": row.platform,
                 "best_pct": round(row.best_possible, 4),
                 "best_static_pct": round(row.best_static, 4),
                 "default_pct": round(row.default_lunarglass, 4)}
                for row in average_speedups(study)],
            "best_static_flags": {
                name: str(best_static_flags(study, name)) for name in names},
        }

    def _run_dispatch(self, job: Job, check: Callable[[], None],
                      publish: Publish) -> dict:
        """A fault-tolerant sharded study (``repro.dispatch``) as a job.

        Shards run on the in-process thread transport sharing the
        process-wide warm cache, so a retried shard — or a resubmitted
        dispatch job — replays its already-measured work as cache hits.
        The job's cooperative cancel/timeout check is wired into the
        supervision loop, which kills in-flight shards on cancellation.
        """
        from repro.dispatch import ShardDispatcher, ThreadTransport

        spec = job.spec
        cases = spec.cases()
        if self.results_dir is None:
            raise ValueError("dispatch jobs need a service results_dir "
                             "for their shard state")
        state_dir = self.results_dir / f"{job.id}.dispatch"
        transport = ThreadTransport(cases,
                                    platforms=spec.resolve_platforms(),
                                    cache=self.cache)
        dispatcher = ShardDispatcher(
            cases=cases, shard_count=spec.shards, transport=transport,
            state_dir=state_dir, seed=spec.seed,
            output=self.results_dir / f"{job.id}.study.json",
            workers=max(1, self.job_workers), cancel_check=check,
            events=lambda event: publish(dict(event)))
        report = dispatcher.run()
        if not report.complete:
            raise RuntimeError(
                f"dispatch incomplete: missing shards "
                f"{report.missing_shards} after {report.retries} retries "
                f"(manifest: {report.manifest_path})")
        job.result_path = str(report.merged_path)
        return {
            "kind": "dispatch",
            "shards": spec.shards,
            "cases": len(cases),
            "retries": report.retries,
            "resumed": sorted(report.resumed),
            "result_path": job.result_path,
            "manifest_path": str(report.manifest_path),
        }

    def _run_search(self, job: Job, engine: EvaluationEngine,
                    publish: Publish) -> dict:
        """A budgeted flag-space search (the ``repro tune`` path) as a job."""
        spec = job.spec
        cases = spec.cases()
        strategy = make_strategy(spec.strategy, seed=spec.seed)
        rows: List[dict] = []
        for platform in spec.resolve_platforms():
            objective = engine.corpus_objective(cases, platform.name)
            outcome = strategy.search(objective, budget=spec.budget)
            row = {
                "platform": platform.name,
                "best_flags": str(
                    OptimizationFlags.from_index(outcome.best_index)),
                "best_pct": round(outcome.best_score, 4),
                "evaluated": outcome.points_evaluated,
            }
            rows.append(row)
            publish(dict(row, type="platform"))
        return {"kind": "search", "strategy": strategy.name,
                "budget": spec.budget, "shaders": len(cases),
                "platforms": [row["platform"] for row in rows],
                "search": rows}


def write_event_line(path: Path, event: dict) -> None:
    """Append one event to a per-job ``.jsonl`` stream (best effort).

    The on-disk event stream mirrors what ``tail`` serves from memory, so
    operators can follow a job with plain ``tail -f`` too.  Failures are
    swallowed: event persistence must never kill the job producing them.
    """
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a", buffering=1) as handle:
            handle.write(json.dumps(event) + "\n")
    except OSError:
        pass
