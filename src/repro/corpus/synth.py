"""Seeded procedural übershader synthesis: feature blocks -> families.

The hand-written corpus (``repro.corpus.templates``) is a faithful but small
stand-in for the paper's extracted GFXBench shaders.  This module scales it
out: a :func:`synth_family` call composes *feature blocks* — a texture-fetch
pattern, an optional lighting model, an optional loop/branch shape, and a
chain of math-heavy post effects — into a new übershader
:class:`~repro.corpus.ubershader.Family` whose ``#define``-gated sections
mirror the structure the paper describes ("a single file containing numerous
graphics techniques is customised via preprocessor directives").

Every block is written in the same GLSL subset the hand-written corpus
already exercises (and the front end, IR verifier, and all five simulated
platforms are tested against), so every generated instance parses, lowers to
verifiable SSA, and measures on every platform.  Blocks are chosen so the
synthesized corpus stresses every optimization pass:

- constant-trip-count loops (``unroll``);
- repeated subexpressions across blocks (``gvn`` / ``cse``);
- long multiply-add chains (``fp_reassociate`` / ``reassociate``);
- divisions by uniforms and constants (``div_to_mul``);
- branch diamonds and ``#ifdef``-gated conditionals (``simplify_cfg`` /
  ``hoist``).

Determinism: a family is a pure function of ``(seed, index)`` — the RNG is
``random.Random(f"repro-synth:{seed}:{index}")`` (string seeding hashes with
SHA-512, so it is stable across processes and Python builds, unaffected by
``PYTHONHASHSEED``).  The family *name* depends only on the index
(``synth_0007``), so seeds change the corpus content, never its shape or
ordering.  See ``docs/corpus.md`` for the authoring guide.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.corpus.ubershader import Family, Variant

#: Sort-stable prefix for generated family names: ``synth_00000`` ... sorts
#: as one contiguous run inside the alphabetical corpus order.
FAMILY_PREFIX = "synth_"

#: Zero-pad width (and therefore cap) for synth family indices: names must
#: sort lexicographically in index order so the corpus stream can lazily
#: merge them into the alphabetical family order without materializing the
#: whole name list.
MAX_SYNTH_FAMILIES = 100_000


@dataclass(frozen=True)
class FeatureBlock:
    """One composable shader fragment.

    ``body`` is a sequence of statements reading and rebinding the running
    ``vec3 color`` value.  ``inputs``/``uniforms`` are declarations hoisted
    (deduplicated) to the top of the generated shader; ``helpers`` are
    free-function definitions emitted before ``main``.  ``bool_knobs`` name
    ``#ifdef`` gates inside ``body``; ``value_knobs`` map ``#define`` names
    that *must* be defined (loop trip counts and the like) to the values a
    variant may choose from.
    """

    name: str
    body: str
    inputs: Tuple[str, ...] = ()
    uniforms: Tuple[str, ...] = ()
    helpers: Tuple[str, ...] = ()
    bool_knobs: Tuple[str, ...] = ()
    value_knobs: Dict[str, Tuple[str, ...]] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Block pools.  Uniform/varying names are globally unique per block so any
# combination of blocks composes without declaration collisions; knob names
# are globally unique so variants toggle exactly one block's gate.
# ---------------------------------------------------------------------------

#: Texture-fetch patterns: exactly one seeds the running ``color`` value.
FETCH_BLOCKS: Tuple[FeatureBlock, ...] = (
    FeatureBlock(
        name="fetch_single",
        inputs=("in vec2 uv;",),
        uniforms=("uniform sampler2D baseMap;", "uniform vec4 baseTint;"),
        body="""\
    vec3 color = texture(baseMap, uv).rgb;
#ifdef SYN_TINT
    color = color * baseTint.rgb;
#endif
""",
        bool_knobs=("SYN_TINT",),
    ),
    FeatureBlock(
        name="fetch_detail",
        inputs=("in vec2 uv;",),
        uniforms=("uniform sampler2D baseMap;",
                  "uniform sampler2D detailMap;",
                  "uniform float detailBlend;"),
        body="""\
    vec3 color = texture(baseMap, uv).rgb;
#ifdef SYN_DETAIL
    vec3 detail = texture(detailMap, uv * 8.0).rgb;
    color = mix(color, color * detail * 2.0, detailBlend);
#endif
""",
        bool_knobs=("SYN_DETAIL",),
    ),
    FeatureBlock(
        # Constant-trip-count accumulation loop: unroll fodder, and the
        # per-tap divide is div_to_mul fodder.
        name="fetch_taps",
        inputs=("in vec2 uv;",),
        uniforms=("uniform sampler2D baseMap;", "uniform float tapSpread;"),
        body="""\
    vec3 color = vec3(0.0);
    for (int t = 0; t < SYN_TAPS; t++) {
        vec2 tapUv = uv + vec2(float(t) * tapSpread, 0.0);
        color += texture(baseMap, tapUv).rgb / float(SYN_TAPS);
    }
""",
        value_knobs={"SYN_TAPS": ("2", "3", "4")},
    ),
    FeatureBlock(
        # Water-style distorted lookup: normal decode + dependent fetch.
        name="fetch_distort",
        inputs=("in vec2 uv;",),
        uniforms=("uniform sampler2D baseMap;",
                  "uniform sampler2D flowMap;",
                  "uniform float flowScale;"),
        body="""\
    vec3 flow = texture(flowMap, uv).rgb * 2.0 - vec3(1.0);
    vec2 warped = uv + flow.xy * flowScale;
    vec3 color = texture(baseMap, warped).rgb;
#ifdef SYN_DOUBLE_WARP
    vec2 warped2 = warped + flow.xy * flowScale * 0.5;
    color = (color + texture(baseMap, warped2).rgb) * 0.5;
#endif
""",
        bool_knobs=("SYN_DOUBLE_WARP",),
    ),
)

#: Lighting models: consume ``color`` as the surface albedo.
LIGHT_BLOCKS: Tuple[FeatureBlock, ...] = (
    FeatureBlock(
        # Lambert/Blinn loop: unroll + hoist (the view vector is loop
        # invariant) + fp_reassociate (the contribution chain).
        name="light_loop",
        inputs=("in vec3 v_normal;", "in vec3 v_pos;"),
        uniforms=("uniform vec3 synLightPos[4];",
                  "uniform vec3 synLightColor[4];",
                  "uniform vec3 synViewPos;",
                  "uniform float synShine;"),
        body="""\
    vec3 nrm = normalize(v_normal);
    vec3 lit = color * 0.1;
    for (int i = 0; i < SYN_LIGHTS; i++) {
        vec3 l = normalize(synLightPos[i] - v_pos);
        float ndl = max(dot(nrm, l), 0.0);
        vec3 contrib = color * synLightColor[i] * ndl;
#ifdef SYN_SPEC
        vec3 view = normalize(synViewPos - v_pos);
        vec3 h = normalize(l + view);
        float s = pow(max(dot(nrm, h), 0.0), synShine);
        contrib = contrib + synLightColor[i] * s * 0.5;
#endif
#ifdef SYN_ATT
        float d = distance(synLightPos[i], v_pos);
        contrib = contrib / (1.0 + 0.09 * d + 0.032 * d * d);
#endif
        lit += contrib;
    }
    color = lit;
""",
        bool_knobs=("SYN_SPEC", "SYN_ATT"),
        value_knobs={"SYN_LIGHTS": ("1", "2", "4")},
    ),
    FeatureBlock(
        # Hemisphere + rim: branch-free math, gvn fodder (normalize(v_normal)
        # recomputed when combined with other normal users).
        name="light_hemi",
        inputs=("in vec3 v_normal;", "in vec3 v_pos;"),
        uniforms=("uniform vec3 skyTint;", "uniform vec3 groundTint;",
                  "uniform vec3 hemiViewPos;"),
        body="""\
    vec3 hn = normalize(v_normal);
    float hemi = hn.y * 0.5 + 0.5;
    vec3 ambient = mix(groundTint, skyTint, hemi);
    color = color * ambient;
#ifdef SYN_RIM
    vec3 toView = normalize(hemiViewPos - v_pos);
    float rim = 1.0 - max(dot(hn, toView), 0.0);
    color = color + skyTint * rim * rim * rim * 0.4;
#endif
""",
        bool_knobs=("SYN_RIM",),
    ),
)

#: Loop/branch shapes: control-flow stress decoupled from lighting.
SHAPE_BLOCKS: Tuple[FeatureBlock, ...] = (
    FeatureBlock(
        # Nested constant loop (PCF-style): unroll's nested case.
        name="shape_grid",
        inputs=("in vec2 uv;",),
        uniforms=("uniform sampler2D occMap;", "uniform float occTexel;"),
        body="""\
    float occ = 0.0;
    for (int gx = 0; gx < SYN_GRID; gx++) {
        for (int gy = 0; gy < SYN_GRID; gy++) {
            vec2 off = vec2(float(gx), float(gy)) * occTexel;
            occ += texture(occMap, uv + off).r;
        }
    }
    occ = occ / (float(SYN_GRID) * float(SYN_GRID));
    color = color * (0.3 + 0.7 * occ);
""",
        value_knobs={"SYN_GRID": ("2", "3")},
    ),
    FeatureBlock(
        # Luma branch diamond: simplify_cfg + hoist fodder.
        name="shape_branch",
        uniforms=("uniform float lumaCut;", "uniform vec3 shadowTint;",
                  "uniform vec3 highlightTint;"),
        body="""\
    float luma = dot(color, vec3(0.2126, 0.7152, 0.0722));
#ifdef SYN_SPLIT_TONE
    if (luma < lumaCut) {
        color = color + shadowTint * (lumaCut - luma);
    } else {
        color = color * (highlightTint * (luma - lumaCut) + vec3(1.0));
    }
#else
    color = mix(color, color * highlightTint, luma);
#endif
""",
        bool_knobs=("SYN_SPLIT_TONE",),
    ),
    FeatureBlock(
        # Conditional accumulation inside a constant loop, SSAO-style.
        name="shape_ao",
        inputs=("in vec2 uv;",),
        uniforms=("uniform sampler2D aoDepth;", "uniform float aoBias;"),
        body="""\
    float center = texture(aoDepth, uv).r;
    float dark = 0.0;
    for (int a = 0; a < SYN_AO_SAMPLES; a++) {
        vec2 aoff = vec2(float(a) * 0.01 - 0.02, float(a) * 0.007);
        float neighbor = texture(aoDepth, uv + aoff).r;
        if (neighbor < center - aoBias) {
            dark += 1.0;
        }
    }
    color = color * (1.0 - dark / float(SYN_AO_SAMPLES) * 0.5);
""",
        value_knobs={"SYN_AO_SAMPLES": ("4", "6", "8")},
    ),
)

#: Post effects: math-heavy ``color`` transforms, chained 1..3 deep.
POST_BLOCKS: Tuple[FeatureBlock, ...] = (
    FeatureBlock(
        # Tonemap: rational polynomial (div_to_mul + fp_reassociate).
        name="post_tonemap",
        uniforms=("uniform float synExposure;",),
        body="""\
    color = color * synExposure;
#ifdef SYN_FILMIC
    vec3 tx = max(color - vec3(0.004), vec3(0.0));
    vec3 tnum = tx * (6.2 * tx + vec3(0.5));
    vec3 tden = tx * (6.2 * tx + vec3(1.7)) + vec3(0.06);
    color = tnum / tden;
#else
    color = color / (color + vec3(1.0));
#endif
""",
        bool_knobs=("SYN_FILMIC",),
    ),
    FeatureBlock(
        name="post_grade",
        uniforms=("uniform float synSat;", "uniform float synCon;"),
        body="""\
    float gradeLuma = dot(color, vec3(0.2126, 0.7152, 0.0722));
    color = mix(vec3(gradeLuma), color, synSat);
#ifdef SYN_CONTRAST
    color = (color - vec3(0.5)) * synCon + vec3(0.5);
#endif
""",
        bool_knobs=("SYN_CONTRAST",),
    ),
    FeatureBlock(
        name="post_vignette",
        inputs=("in vec2 uv;",),
        uniforms=("uniform float vigStrength;",),
        body="""\
    vec2 vigPos = uv - vec2(0.5);
    float vigDist = length(vigPos) * 2.0;
#ifdef SYN_SMOOTH_VIG
    float vig = 1.0 - smoothstep(0.4, 1.2, vigDist) * vigStrength;
#else
    float vig = 1.0 - clamp(vigDist - 0.4, 0.0, 1.0) * vigStrength;
#endif
    color = color * vig;
""",
        bool_knobs=("SYN_SMOOTH_VIG",),
    ),
    FeatureBlock(
        # Long multiply-add chain through a helper: reassociation fodder
        # plus an (often) uncalled helper inflating the LoC metric, like the
        # paper's extracted sources.
        name="post_curve",
        uniforms=("uniform float curveAmount;",),
        helpers=("""\
vec3 synCurve(vec3 c, float k)
{
    vec3 c2 = c * c;
    vec3 c3 = c2 * c;
    return c + (c2 * 0.35 - c3 * 0.15) * k;
}
""",),
        body="""\
#ifdef SYN_CURVE
    color = synCurve(color, curveAmount);
#else
    color = color * (vec3(1.0) + curveAmount * 0.1);
#endif
    color = clamp(color, vec3(0.0), vec3(1.0));
""",
        bool_knobs=("SYN_CURVE",),
    ),
    FeatureBlock(
        name="post_fog",
        inputs=("in float v_depth;",),
        uniforms=("uniform vec3 synFogColor;", "uniform float synFogDensity;"),
        body="""\
#ifdef SYN_EXP2_FOG
    float fd = v_depth * synFogDensity;
    float fogF = exp(-fd * fd);
#else
    float fogF = exp(-v_depth * synFogDensity);
#endif
    color = mix(synFogColor, color, clamp(fogF, 0.0, 1.0));
""",
        bool_knobs=("SYN_EXP2_FOG",),
    ),
    FeatureBlock(
        name="post_gamma",
        uniforms=("uniform float synGammaPow;",),
        body="""\
#ifdef SYN_DITHER
    float grain = fract(sin(dot(color.xy, vec2(12.9898, 78.233))) * 43758.5453);
    color = color + vec3(grain / 255.0);
#endif
    color = pow(max(color, vec3(0.0)), vec3(1.0 / synGammaPow));
""",
        bool_knobs=("SYN_DITHER",),
    ),
)


def family_name(index: int) -> str:
    """The deterministic name of synth family *index* (seed-independent)."""
    if not 0 <= index < MAX_SYNTH_FAMILIES:
        raise ValueError(f"synth family index must be in "
                         f"[0, {MAX_SYNTH_FAMILIES}), got {index}")
    return f"{FAMILY_PREFIX}{index:05d}"


def _rng(seed: int, index: int) -> random.Random:
    # String seeding hashes via SHA-512: stable across processes/platforms.
    return random.Random(f"repro-synth:{seed}:{index}")


def _pick_blocks(rng: random.Random) -> List[FeatureBlock]:
    """Draw one composition: fetch [+ light] [+ shape] + 1..3 post blocks."""
    blocks = [rng.choice(FETCH_BLOCKS)]
    if rng.random() < 0.7:
        blocks.append(rng.choice(LIGHT_BLOCKS))
    if rng.random() < 0.6:
        blocks.append(rng.choice(SHAPE_BLOCKS))
    post_count = rng.randint(1, 3)
    blocks.extend(rng.sample(POST_BLOCKS, post_count))
    return blocks


def _compose_template(blocks: Sequence[FeatureBlock]) -> str:
    """Assemble deduplicated declarations + helpers + main from *blocks*."""
    inputs: List[str] = []
    uniforms: List[str] = []
    helpers: List[str] = []
    for block in blocks:
        for decl in block.inputs:
            if decl not in inputs:
                inputs.append(decl)
        for decl in block.uniforms:
            if decl not in uniforms:
                uniforms.append(decl)
        for helper in block.helpers:
            if helper not in helpers:
                helpers.append(helper)
    lines = ["out vec4 fragColor;"]
    lines.extend(inputs)
    lines.extend(uniforms)
    parts = ["\n".join(lines) + "\n"]
    parts.extend("\n" + helper for helper in helpers)
    body = "".join(block.body for block in blocks)
    parts.append("\nvoid main()\n{\n" + body +
                 "    fragColor = vec4(color, 1.0);\n}\n")
    return "".join(parts)


def _draw_variants(rng: random.Random,
                   blocks: Sequence[FeatureBlock]) -> List[Variant]:
    """2..4 named #define sets over the blocks' knobs.

    Value knobs (loop trip counts) are always defined — the template
    references them unconditionally, exactly like ``NUM_LIGHTS`` in the
    hand-written phong family.  Bool knobs gate ``#ifdef`` sections; the
    first variant is the all-gates-off baseline.
    """
    value_knobs: Dict[str, Tuple[str, ...]] = {}
    bool_knobs: List[str] = []
    for block in blocks:
        value_knobs.update(block.value_knobs)
        bool_knobs.extend(block.bool_knobs)

    def base_defines() -> Dict[str, str]:
        return {knob: options[0] for knob, options in value_knobs.items()}

    variants = [Variant("base", base_defines())]
    seen = {tuple(sorted(variants[0].defines.items()))}
    extra = rng.randint(1, 3)
    for _ in range(extra * 3):  # a few retries to dodge duplicate draws
        if len(variants) >= 1 + extra:
            break
        defines = {knob: rng.choice(options)
                   for knob, options in value_knobs.items()}
        for knob in bool_knobs:
            if rng.random() < 0.5:
                defines[knob] = ""
        key = tuple(sorted(defines.items()))
        if key in seen:
            continue
        seen.add(key)
        variants.append(Variant(f"v{len(variants)}", defines))
    return variants


def synth_family(seed: int, index: int) -> Family:
    """Deterministically synthesize family *index* of the stream for *seed*."""
    rng = _rng(seed, index)
    blocks = _pick_blocks(rng)
    template = _compose_template(blocks)
    variants = _draw_variants(rng, blocks)
    return Family(family_name(index), template, variants)


def synth_families(seed: int, count: int) -> Dict[str, Family]:
    """The first *count* synthesized families for *seed*, by name."""
    families = [synth_family(seed, index) for index in range(count)]
    return {family.name: family for family in families}
