"""Synthetic GFXBench-4.0-style fragment shader corpus.

GFXBench is proprietary (the paper extracted its shaders from the Mesa
driver at run time); this package substitutes a deterministic corpus of
übershader *families* specialised by ``#define`` blocks — the same structure
the paper describes: "some shaders are identical apart from preprocessor
#define statements, forming families of similar shaders".  The size
distribution follows the paper's Fig. 4a power law: many tiny shaders, a
long tail, nothing above ~300 lines.

Beyond the hand-written families, :mod:`repro.corpus.synth` procedurally
synthesizes arbitrarily many additional families from seeded feature-block
composition (``default_corpus(synth_seed=…, synth_count=…)``), and the
corpus stream is lazy — see ``docs/corpus.md`` for the authoring guide.
"""

from repro.corpus.generator import (
    CorpusSpec, corpus_families, default_corpus, iter_corpus,
)
from repro.corpus.motivating import MOTIVATING_SHADER
from repro.corpus.synth import synth_families, synth_family

__all__ = ["CorpusSpec", "default_corpus", "corpus_families", "iter_corpus",
           "synth_family", "synth_families", "MOTIVATING_SHADER"]
