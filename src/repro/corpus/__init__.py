"""Synthetic GFXBench-4.0-style fragment shader corpus.

GFXBench is proprietary (the paper extracted its shaders from the Mesa
driver at run time); this package substitutes a deterministic corpus of
übershader *families* specialised by ``#define`` blocks — the same structure
the paper describes: "some shaders are identical apart from preprocessor
#define statements, forming families of similar shaders".  The size
distribution follows the paper's Fig. 4a power law: many tiny shaders, a
long tail, nothing above ~300 lines.
"""

from repro.corpus.generator import default_corpus, corpus_families
from repro.corpus.motivating import MOTIVATING_SHADER

__all__ = ["default_corpus", "corpus_families", "MOTIVATING_SHADER"]
