"""Small shader families: sprites, particles, sky, fog, depth utilities.

These provide the long low-complexity tail of the Fig. 4a distribution —
"numerous simpler shaders (many containing only a few lines)" where most
optimization flags do not apply.
"""

from repro.corpus.ubershader import Family, Variant

_SPRITE = """\
out vec4 fragColor;
in vec2 uv;
uniform sampler2D tex;
uniform vec4 tint;

void main()
{
    vec4 base = texture(tex, uv);
#ifdef TINTED
    base = base * tint;
#endif
#ifdef ALPHA_TEST
    if (base.a < 0.5) {
        discard;
    }
#endif
    fragColor = base;
}
"""

_PARTICLE = """\
out vec4 fragColor;
in vec2 uv;
in vec4 v_color;
uniform sampler2D tex;
uniform float u_fade;

void main()
{
    vec4 base = texture(tex, uv);
    vec4 shaded = base * v_color;
#ifdef SOFT_FADE
    float fade = clamp(u_fade * 2.0 + 0.0, 0.0, 1.0);
    shaded = shaded * fade;
#endif
#ifdef PREMULTIPLY
    vec3 rgb = shaded.rgb * shaded.a;
    fragColor = vec4(rgb.x, rgb.y, rgb.z, shaded.a);
#else
    fragColor = shaded;
#endif
}
"""

_SKYBOX = """\
out vec4 fragColor;
in vec3 v_dir;
uniform samplerCube sky;
uniform vec4 horizonColor;
uniform float u_blend;

void main()
{
    vec3 dir = normalize(v_dir);
    vec4 sky0 = texture(sky, dir);
#ifdef HORIZON_BLEND
    float h = clamp(1.0 - abs(dir.y) * 4.0, 0.0, 1.0);
    fragColor = mix(sky0, horizonColor, h * u_blend);
#else
    fragColor = sky0;
#endif
}
"""

_FOG = """\
out vec4 fragColor;
in vec2 uv;
in float v_depth;
uniform sampler2D tex;
uniform vec4 fogColor;
uniform float fogDensity;

void main()
{
    vec4 base = texture(tex, uv);
#ifdef EXP2_FOG
    float d = v_depth * fogDensity;
    float f = exp(-d * d);
#else
    float f = exp(-v_depth * fogDensity);
#endif
    f = clamp(f, 0.0, 1.0);
#ifdef HEIGHT_CUTOFF
    if (v_depth > 0.9) {
        f = 0.0;
    } else {
        f = f * 1.0;
    }
#endif
    fragColor = mix(fogColor, base, f);
}
"""

_DEPTH_PACK = """\
out vec4 fragColor;
in float v_depth;

void main()
{
    float d = clamp(v_depth, 0.0, 1.0);
    float r = fract(d * 255.0);
    float g = fract(d * 255.0 * 255.0);
    float b = fract(d * 255.0 * 255.0 * 255.0);
#ifdef HIGH_PRECISION
    float bias_r = r / 255.0;
    float bias_g = g / 255.0;
    fragColor = vec4(d - bias_r, r - bias_g, g - b / 255.0, b);
#else
    fragColor = vec4(d, r, g, b);
#endif
}
"""

_VIGNETTE = """\
out vec4 fragColor;
in vec2 uv;
uniform sampler2D tex;
uniform float strength;

void main()
{
    vec4 base = texture(tex, uv);
    vec2 center = uv - vec2(0.5);
    float dist = length(center) * 2.0;
#ifdef SMOOTH_EDGE
    float v = 1.0 - smoothstep(0.4, 1.2, dist) * strength;
#else
    float v = 1.0 - clamp(dist - 0.4, 0.0, 1.0) * strength;
#endif
    vec3 shaded = base.rgb * v;
    fragColor = vec4(shaded, base.a);
}
"""

_FLAT_COLOR = """\
out vec4 fragColor;
uniform vec4 u_color;

void main()
{
#ifdef GAMMA
    vec3 linear_rgb = pow(u_color.rgb, vec3(2.2));
    fragColor = vec4(linear_rgb, u_color.a);
#else
    fragColor = u_color;
#endif
}
"""

SIMPLE_FAMILIES = {
    "sprite": Family("sprite", _SPRITE, [
        Variant("base", {}),
        Variant("tinted", {"TINTED": ""}),
        Variant("cutout", {"TINTED": "", "ALPHA_TEST": ""}),
    ]),
    "particle": Family("particle", _PARTICLE, [
        Variant("base", {}),
        Variant("soft", {"SOFT_FADE": ""}),
        Variant("premul", {"SOFT_FADE": "", "PREMULTIPLY": ""}),
    ]),
    "skybox": Family("skybox", _SKYBOX, [
        Variant("base", {}),
        Variant("horizon", {"HORIZON_BLEND": ""}),
    ]),
    "fog": Family("fog", _FOG, [
        Variant("exp", {}),
        Variant("exp2", {"EXP2_FOG": ""}),
        Variant("cutoff", {"EXP2_FOG": "", "HEIGHT_CUTOFF": ""}),
    ]),
    "depth_pack": Family("depth_pack", _DEPTH_PACK, [
        Variant("base", {}),
        Variant("hiprec", {"HIGH_PRECISION": ""}),
    ]),
    "vignette": Family("vignette", _VIGNETTE, [
        Variant("base", {}),
        Variant("smooth", {"SMOOTH_EDGE": ""}),
    ]),
    "flat": Family("flat", _FLAT_COLOR, [
        Variant("base", {}),
        Variant("gamma", {"GAMMA": ""}),
    ]),
}
