"""Übershader template bodies, grouped roughly by rendering technique."""

from repro.corpus.templates.simple import SIMPLE_FAMILIES
from repro.corpus.templates.lighting import LIGHTING_FAMILIES
from repro.corpus.templates.post import POST_FAMILIES

ALL_FAMILIES = {**SIMPLE_FAMILIES, **LIGHTING_FAMILIES, **POST_FAMILIES}

__all__ = ["ALL_FAMILIES", "SIMPLE_FAMILIES", "LIGHTING_FAMILIES",
           "POST_FAMILIES"]
