"""Lighting shader families: Phong, PBR übershader, normal mapping, water.

These are the corpus's mid-to-large shaders: light loops (unrollable),
specular branches (hoistable), long multiply-add chains (FP reassociation),
and matrix work (the scalarization artifact).  The PBR template also carries
helper functions that some specialisations never call — the paper notes such
"unused function definitions" inflate the LoC metric.
"""

from repro.corpus.ubershader import Family, Variant

_PHONG = """\
out vec4 fragColor;
in vec3 v_normal;
in vec3 v_pos;
in vec2 uv;
uniform sampler2D albedo;
uniform vec3 lightPos[4];
uniform vec3 lightColor[4];
uniform vec3 viewPos;
uniform float shininess;

void main()
{
    vec3 n = normalize(v_normal);
    vec3 base = texture(albedo, uv).rgb;
    vec3 total = base * 0.1;
#ifdef LEGACY_AMBIENT
    total = total + base * 0.0;
#endif
    for (int i = 0; i < NUM_LIGHTS; i++) {
        vec3 l = normalize(lightPos[i] - v_pos);
        float ndl = max(dot(n, l), 0.0);
        vec3 contrib = base * lightColor[i] * ndl;
#ifdef SPECULAR
        vec3 v = normalize(viewPos - v_pos);
        vec3 h = normalize(l + v);
        float s = pow(max(dot(n, h), 0.0), shininess);
        contrib = contrib + lightColor[i] * s * 0.5;
#endif
#ifdef ATTENUATION
        float d = distance(lightPos[i], v_pos);
        float att = 1.0 / (1.0 + 0.09 * d + 0.032 * d * d);
        contrib = contrib * att;
#endif
        total += contrib;
    }
    fragColor = vec4(total, 1.0);
}
"""

_PBR = """\
out vec4 fragColor;
in vec3 v_normal;
in vec3 v_pos;
in vec2 uv;
uniform sampler2D albedoMap;
uniform sampler2D materialMap;
uniform vec3 lightPos[4];
uniform vec3 lightColor[4];
uniform vec3 viewPos;
uniform float exposure;

float distributionGGX(vec3 n, vec3 h, float roughness)
{
    float a = roughness * roughness;
    float a2 = a * a;
    float ndh = max(dot(n, h), 0.0);
    float ndh2 = ndh * ndh;
    float denom = ndh2 * (a2 - 1.0) + 1.0;
    return a2 / (3.14159265 * denom * denom + 0.0001);
}

float geometrySchlick(float ndv, float roughness)
{
    float r = roughness + 1.0;
    float k = r * r / 8.0;
    return ndv / (ndv * (1.0 - k) + k);
}

float geometrySmith(vec3 n, vec3 v, vec3 l, float roughness)
{
    float ndv = max(dot(n, v), 0.0);
    float ndl = max(dot(n, l), 0.0);
    return geometrySchlick(ndv, roughness) * geometrySchlick(ndl, roughness);
}

vec3 fresnelSchlick(float cosTheta, vec3 f0)
{
    float p = 1.0 - cosTheta;
    float p5 = p * p * p * p * p;
    return f0 + (vec3(1.0) - f0) * p5;
}

vec3 tonemapACES(vec3 x)
{
    vec3 num = x * (2.51 * x + vec3(0.03));
    vec3 den = x * (2.43 * x + vec3(0.59)) + vec3(0.14);
    return clamp(num / den, vec3(0.0), vec3(1.0));
}

void main()
{
    vec3 n = normalize(v_normal);
    vec3 v = normalize(viewPos - v_pos);
    vec3 albedo = pow(texture(albedoMap, uv).rgb, vec3(2.2));
    vec4 material = texture(materialMap, uv);
    float metallic = material.r;
    float roughness = clamp(material.g, 0.05, 1.0);
    vec3 f0 = mix(vec3(0.04), albedo, metallic);
    vec3 lo = vec3(0.0);
    for (int i = 0; i < NUM_LIGHTS; i++) {
        vec3 toLight = lightPos[i] - v_pos;
        vec3 l = normalize(toLight);
        vec3 h = normalize(v + l);
        float dist = length(toLight);
        float attenuation = 1.0 / (dist * dist + 0.01);
        vec3 radiance = lightColor[i] * attenuation;
        float ndf = distributionGGX(n, h, roughness);
        float g = geometrySmith(n, v, l, roughness);
        vec3 f = fresnelSchlick(max(dot(h, v), 0.0), f0);
        vec3 kd = (vec3(1.0) - f) * (1.0 - metallic);
        float ndl = max(dot(n, l), 0.0);
        float ndv = max(dot(n, v), 0.0);
        vec3 specular = ndf * g * f / (4.0 * ndv * ndl + 0.001);
        lo += (kd * albedo / 3.14159265 + specular) * radiance * ndl;
    }
    vec3 ambient = albedo * 0.03;
    vec3 color = ambient + lo;
#ifdef TONEMAP_ACES
    color = tonemapACES(color * exposure);
#else
    color = color * exposure;
    color = color / (color + vec3(1.0));
#endif
#ifdef GAMMA_OUT
    color = pow(color, vec3(1.0 / 2.2));
#endif
    fragColor = vec4(color, 1.0);
}
"""

_NORMAL_MAP = """\
out vec4 fragColor;
in vec3 v_normal;
in vec3 v_tangent;
in vec3 v_pos;
in vec2 uv;
uniform sampler2D albedo;
uniform sampler2D normalMap;
uniform mat4 u_model;
uniform vec3 lightDir;
uniform vec3 lightTint;

void main()
{
    vec3 n0 = normalize(v_normal);
    vec3 t0 = normalize(v_tangent);
    vec3 b0 = cross(n0, t0);
    vec3 sampled = texture(normalMap, uv).rgb * 2.0 - vec3(1.0);
    mat3 tbn = mat3(t0, b0, n0);
    vec3 n = normalize(tbn * sampled);
#ifdef WORLD_SPACE
    vec4 world = u_model * vec4(n, 0.0);
    n = normalize(world.xyz);
#endif
    float ndl = max(dot(n, normalize(lightDir)), 0.0);
    vec3 base = texture(albedo, uv).rgb;
    vec3 lit = base * ndl * lightTint + base * 0.15;
    fragColor = vec4(lit, 1.0);
}
"""

_WATER = """\
out vec4 fragColor;
in vec2 uv;
in vec3 v_pos;
uniform sampler2D normalA;
uniform sampler2D normalB;
uniform sampler2D reflection;
uniform float u_time;
uniform vec3 deepColor;
uniform vec3 viewPos;

void main()
{
    vec2 scrollA = uv * 4.0 + vec2(u_time * 0.03, u_time * 0.01);
    vec2 scrollB = uv * 2.0 - vec2(u_time * 0.02, u_time * 0.04);
    vec3 nA = texture(normalA, scrollA).rgb * 2.0 - vec3(1.0);
    vec3 nB = texture(normalB, scrollB).rgb * 2.0 - vec3(1.0);
    vec3 n = normalize(nA + nB);
    vec3 view = normalize(viewPos - v_pos);
    float facing = max(dot(view, vec3(0.0, 1.0, 0.0)), 0.0);
    float p = 1.0 - facing;
    float fres = 0.02 + 0.98 * p * p * p * p * p;
    vec2 distorted = uv + n.xz * 0.05;
    vec3 refl = texture(reflection, distorted).rgb;
#ifdef DEEP_FADE
    float depthMix = clamp(v_pos.y * 0.25 + 0.5, 0.0, 1.0);
    vec3 water = mix(deepColor, deepColor * 0.4, depthMix);
#else
    vec3 water = deepColor;
#endif
    vec3 color = mix(water, refl, fres);
    fragColor = vec4(color, 1.0);
}
"""

_TERRAIN_LOD = """\
out vec4 fragColor;
in vec2 uv;
in float v_depth;
uniform sampler2D baseMap;
uniform sampler2D detailA;
uniform sampler2D detailB;
uniform sampler2D detailC;
uniform float lodCutoff;

void main()
{
    vec3 base = texture(baseMap, uv).rgb;
#ifdef DETAIL_BRANCH
    if (v_depth < lodCutoff * 0.5) {
        vec3 dA = texture(detailA, uv * 16.0).rgb;
        vec3 dB = texture(detailB, uv * 31.0).rgb;
        vec3 dC = texture(detailC, uv * 64.0).rgb;
        vec3 detail = dA * 0.5 + dB * 0.3 + dC * 0.2;
        base = base * (detail + vec3(0.5));
    } else {
        base = base * 1.0;
    }
#endif
    vec3 macro = texture(baseMap, uv * 0.25).rgb;
    base = mix(base, base * macro * 2.0, 0.35);
    float slope = clamp(dot(normalize(vec3(uv, 1.0)), vec3(0.0, 0.0, 1.0)), 0.0, 1.0);
    vec3 tinted = base * (0.4 + 0.6 * slope);
    float fog = exp(-v_depth * 1.5);
    vec3 fogged = mix(vec3(0.6, 0.7, 0.8), tinted, clamp(fog, 0.0, 1.0));
    float fade = clamp(1.0 - v_depth, 0.0, 1.0);
    fragColor = vec4(fogged * fade, 1.0);
}
"""

LIGHTING_FAMILIES = {
    "terrain_lod": Family("terrain_lod", _TERRAIN_LOD, [
        Variant("flat", {}),
        Variant("detail", {"DETAIL_BRANCH": ""}),
    ]),
    "phong": Family("phong", _PHONG, [
        Variant("l1", {"NUM_LIGHTS": "1"}),
        Variant("l2", {"NUM_LIGHTS": "2", "LEGACY_AMBIENT": ""}),
        Variant("l4", {"NUM_LIGHTS": "4"}),
        Variant("l2_spec", {"NUM_LIGHTS": "2", "SPECULAR": ""}),
        Variant("l4_spec_att",
                {"NUM_LIGHTS": "4", "SPECULAR": "", "ATTENUATION": ""}),
    ]),
    "pbr": Family("pbr", _PBR, [
        Variant("l1", {"NUM_LIGHTS": "1"}),
        Variant("l2_aces", {"NUM_LIGHTS": "2", "TONEMAP_ACES": ""}),
        Variant("l4_aces_gamma",
                {"NUM_LIGHTS": "4", "TONEMAP_ACES": "", "GAMMA_OUT": ""}),
        Variant("l2_gamma", {"NUM_LIGHTS": "2", "GAMMA_OUT": ""}),
    ]),
    "normal_map": Family("normal_map", _NORMAL_MAP, [
        Variant("tangent", {}),
        Variant("world", {"WORLD_SPACE": ""}),
    ]),
    "water": Family("water", _WATER, [
        Variant("base", {}),
        Variant("deep", {"DEEP_FADE": ""}),
    ]),
}
