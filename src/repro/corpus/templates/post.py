"""Post-processing families: blur kernels, bloom, tonemapping, SSAO, shadow
filtering, colour grading.

The blur family generalises the paper's motivating example (Listing 1);
the shadow family contributes nested constant loops (PCF); colour grading
contributes branch diamonds for the Hoist pass.
"""

from repro.corpus.ubershader import Family, Variant

_BLUR = """\
out vec4 fragColor;
in vec2 uv;
uniform sampler2D tex;
uniform vec4 ambient;

void main()
{
#if TAPS == 9
    const vec4[] weights = vec4[](
        vec4(0.01), vec4(0.15), vec4(0.42), vec4(0.63), vec4(1.83),
        vec4(0.63), vec4(0.42), vec4(0.15), vec4(0.01));
    const vec2[] offsets = vec2[](
        vec2(-0.0083), vec2(-0.0062), vec2(-0.0041), vec2(-0.0021),
        vec2(0.0), vec2(0.0021), vec2(0.0041), vec2(0.0062), vec2(0.0083));
#elif TAPS == 5
    const vec4[] weights = vec4[](
        vec4(0.12), vec4(0.5), vec4(1.0), vec4(0.5), vec4(0.12));
    const vec2[] offsets = vec2[](
        vec2(-0.004), vec2(-0.002), vec2(0.0), vec2(0.002), vec2(0.004));
#else
    const vec4[] weights = vec4[](vec4(0.5), vec4(1.0), vec4(0.5));
    const vec2[] offsets = vec2[](vec2(-0.002), vec2(0.0), vec2(0.002));
#endif
    float weightTotal = 0.0;
    fragColor = vec4(0.0);
    for (int i = 0; i < TAPS; i++) {
        weightTotal += weights[i][0];
        fragColor += weights[i] * texture(tex, uv + offsets[i]) * 3.0 * ambient;
    }
    fragColor /= weightTotal;
}
"""

_BLOOM = """\
out vec4 fragColor;
in vec2 uv;
uniform sampler2D scene;
uniform sampler2D blurred;
uniform float threshold;
uniform float intensity;

void main()
{
    vec3 base = texture(scene, uv).rgb;
    vec3 glow = texture(blurred, uv).rgb;
#ifdef THRESHOLDED
    float luma = dot(glow, vec3(0.2126, 0.7152, 0.0722));
    float keep = step(threshold, luma);
    glow = glow * keep;
#endif
#ifdef ADDITIVE
    vec3 color = base + glow * intensity;
#else
    vec3 color = mix(base, glow, intensity * 0.5);
#endif
    fragColor = vec4(color, 1.0);
}
"""

_TONEMAP = """\
out vec4 fragColor;
in vec2 uv;
uniform sampler2D hdr;
uniform float exposure;

void main()
{
    vec3 color = texture(hdr, uv).rgb * exposure;
#ifdef FILMIC
    vec3 x = max(color - vec3(0.004), vec3(0.0));
    vec3 num = x * (6.2 * x + vec3(0.5));
    vec3 den = x * (6.2 * x + vec3(1.7)) + vec3(0.06);
    color = num / den;
#else
    color = color / (color + vec3(1.0));
#endif
#ifdef GAMMA
    color = pow(color, vec3(1.0) / 2.2);
#endif
#ifdef DITHER
    float noise = fract(sin(dot(uv, vec2(12.9898, 78.233))) * 43758.5453);
    color = color + vec3(noise / 255.0);
#endif
    fragColor = vec4(color, 1.0);
}
"""

_SSAO = """\
out vec4 fragColor;
in vec2 uv;
uniform sampler2D depthTex;
uniform float radius;
uniform float bias;

void main()
{
    const vec2[] kernel = vec2[](
        vec2(0.7, 0.2), vec2(-0.4, 0.6), vec2(0.1, -0.8), vec2(-0.6, -0.3),
        vec2(0.3, 0.5), vec2(-0.2, -0.6), vec2(0.8, -0.1), vec2(-0.7, 0.4));
    float center = texture(depthTex, uv).r;
    float occlusion = 0.0;
    for (int i = 0; i < SAMPLES; i++) {
        vec2 offset = kernel[i] * radius;
        float sampleDepth = texture(depthTex, uv + offset).r;
        float rangeCheck = smoothstep(0.0, 1.0, radius / (abs(center - sampleDepth) + 0.0001));
        if (sampleDepth < center - bias) {
            occlusion += rangeCheck;
        }
    }
    float ao = 1.0 - occlusion / float(SAMPLES);
    fragColor = vec4(ao, ao, ao, 1.0);
}
"""

_SHADOW = """\
out vec4 fragColor;
in vec2 uv;
in vec3 v_shadowCoord;
uniform sampler2D albedo;
uniform sampler2DShadow shadowMap;
uniform float texelSize;
uniform vec3 lightTint;

void main()
{
    vec3 base = texture(albedo, uv).rgb;
#ifdef PCF
    float lit = 0.0;
    for (int x = 0; x < PCF_SIZE; x++) {
        for (int y = 0; y < PCF_SIZE; y++) {
            float ox = (float(x) - float(PCF_SIZE) * 0.5) * texelSize;
            float oy = (float(y) - float(PCF_SIZE) * 0.5) * texelSize;
            vec3 coord = v_shadowCoord + vec3(ox, oy, 0.0);
            lit += texture(shadowMap, coord);
        }
    }
    lit = lit / (float(PCF_SIZE) * float(PCF_SIZE));
#else
    float lit = texture(shadowMap, v_shadowCoord);
#endif
    vec3 shaded = base * (0.2 + 0.8 * lit) * lightTint;
    fragColor = vec4(shaded, 1.0);
}
"""

_COLOR_GRADE = """\
out vec4 fragColor;
in vec2 uv;
uniform sampler2D tex;
uniform float saturation;
uniform float contrast;
uniform vec3 liftColor;
uniform vec3 gainColor;

void main()
{
    vec3 color = texture(tex, uv).rgb;
    float luma = dot(color, vec3(0.2126, 0.7152, 0.0722));
#ifdef SATURATE
    color = mix(vec3(luma), color, saturation);
#endif
#ifdef CONTRAST
    color = (color - vec3(0.5)) * contrast + vec3(0.5);
#endif
#ifdef LIFT_GAIN
    if (luma < 0.5) {
        color = color + liftColor * (0.5 - luma);
    } else {
        color = color * (gainColor * (luma - 0.5) + vec3(1.0));
    }
#endif
    color = clamp(color, vec3(0.0), vec3(1.0));
    fragColor = vec4(color, 1.0);
}
"""

POST_FAMILIES = {
    "blur": Family("blur", _BLUR, [
        Variant("taps3", {"TAPS": "3"}),
        Variant("taps5", {"TAPS": "5"}),
        Variant("taps9", {"TAPS": "9"}),
    ]),
    "bloom": Family("bloom", _BLOOM, [
        Variant("mixed", {}),
        Variant("additive", {"ADDITIVE": ""}),
        Variant("thresh", {"ADDITIVE": "", "THRESHOLDED": ""}),
    ]),
    "tonemap": Family("tonemap", _TONEMAP, [
        Variant("reinhard", {}),
        Variant("filmic", {"FILMIC": ""}),
        Variant("filmic_gamma", {"FILMIC": "", "GAMMA": ""}),
        Variant("dither", {"GAMMA": "", "DITHER": ""}),
    ]),
    "ssao": Family("ssao", _SSAO, [
        Variant("s4", {"SAMPLES": "4"}),
        Variant("s8", {"SAMPLES": "8"}),
    ]),
    "shadow": Family("shadow", _SHADOW, [
        Variant("hard", {}),
        Variant("pcf2", {"PCF": "", "PCF_SIZE": "2"}),
        Variant("pcf3", {"PCF": "", "PCF_SIZE": "3"}),
    ]),
    "color_grade": Family("color_grade", _COLOR_GRADE, [
        Variant("sat", {"SATURATE": ""}),
        Variant("sat_con", {"SATURATE": "", "CONTRAST": ""}),
        Variant("full", {"SATURATE": "", "CONTRAST": "", "LIFT_GAIN": ""}),
    ]),
}
