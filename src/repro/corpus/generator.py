"""Corpus assembly: hand-written + synthesized families, lazily instantiated.

The corpus is defined as an ordered stream of :class:`ShaderCase` objects —
every variant of every family, alphabetical by family name (synthesized
families are named ``synth_0000`` ... so they form one contiguous run inside
that order).  :func:`iter_corpus` yields the stream lazily: a family's
template is only built and instantiated once the iteration reaches it, so
``default_corpus(max_shaders=10, synth_count=100_000)`` pays for ten cases,
not a hundred thousand.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import merge
from itertools import islice
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.corpus import synth
from repro.corpus.templates import ALL_FAMILIES
from repro.corpus.ubershader import Family
from repro.harness.results import ShaderCase


@dataclass(frozen=True)
class CorpusSpec:
    """The corpus-selection parameters shared by every corpus consumer.

    One value object behind the CLI's ``--max-shaders``/``--synth-seed``/
    ``--synth-count`` flags *and* the study service's :class:`JobSpec`
    (``repro.service.jobs``), so the two surfaces cannot drift: both call
    :meth:`build`, which is a thin wrapper over :func:`default_corpus`.

    The spec is canonical-JSON round-trippable (:meth:`to_dict` /
    :meth:`from_dict`) because it is part of a job's content address.
    """

    max_shaders: Optional[int] = None
    synth_seed: Optional[int] = None
    synth_count: int = 0
    import_dir: Optional[str] = None

    def build(self) -> List[ShaderCase]:
        """Instantiate the selected corpus (lazily truncated)."""
        return default_corpus(max_shaders=self.max_shaders,
                              synth_seed=self.synth_seed,
                              synth_count=self.synth_count,
                              import_dir=self.import_dir)

    def to_dict(self) -> Dict[str, object]:
        """A canonical, JSON-safe form (stable across equal specs).

        ``import_dir`` is only present when set, so specs without imports
        keep their historical canonical form (and content digests).  Note
        the digest covers the *path*, not the directory's contents.
        """
        payload: Dict[str, object] = {
            "max_shaders": self.max_shaders,
            "synth_seed": self.synth_seed,
            "synth_count": self.synth_count,
        }
        if self.import_dir is not None:
            payload["import_dir"] = self.import_dir
        return payload

    def to_cli_args(self) -> List[str]:
        """This spec as the equivalent shared CLI corpus flags.

        The inverse of ``corpus_spec_from_args``: the shard dispatcher's
        subprocess transport ships the corpus to ``repro study`` workers
        as these parameters (the corpus content is a pure function of
        them), and shard-identity validation on the way back proves the
        worker rebuilt the same corpus.
        """
        args: List[str] = []
        if self.max_shaders:
            args += ["--max-shaders", str(self.max_shaders)]
        if self.synth_seed is not None:
            args += ["--synth-seed", str(self.synth_seed)]
        if self.synth_count:
            args += ["--synth-count", str(self.synth_count)]
        if self.import_dir is not None:
            args += ["--import-dir", self.import_dir]
        return args

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CorpusSpec":
        """Rebuild a spec from :meth:`to_dict` output (extras rejected)."""
        known = {"max_shaders", "synth_seed", "synth_count", "import_dir"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown CorpusSpec fields: {sorted(unknown)}")
        max_shaders = payload.get("max_shaders")
        synth_seed = payload.get("synth_seed")
        import_dir = payload.get("import_dir")
        return cls(
            max_shaders=None if max_shaders is None else int(max_shaders),
            synth_seed=None if synth_seed is None else int(synth_seed),
            synth_count=int(payload.get("synth_count") or 0),
            import_dir=None if import_dir is None else str(import_dir))


def corpus_families(synth_seed: Optional[int] = None,
                    synth_count: int = 0) -> Dict[str, Family]:
    """All übershader families by name.

    With ``synth_count > 0``, the first *synth_count* synthesized families
    for ``synth_seed`` (default seed 2018) are included alongside the
    hand-written ones.  This instantiates every requested family; prefer
    :func:`iter_corpus` when only a prefix of the corpus is needed.
    """
    families = dict(ALL_FAMILIES)
    if synth_count:
        families.update(synth.synth_families(
            2018 if synth_seed is None else synth_seed, synth_count))
    return families


def _family_stream(synth_seed: Optional[int],
                   synth_count: int) -> Iterator[Tuple[str, Callable[[], Family]]]:
    """Lazily yield ``(name, zero-arg builder)`` in sorted-name order.

    Names are known without building templates, and both the hand-written
    names (pre-sorted) and the synthesized names (zero-padded, so index
    order *is* lexicographic order) are already sorted streams — a lazy
    two-way merge establishes the corpus order without materializing
    anything, so a truncated consumer never even names the tail.
    """
    handwritten = ((name, lambda name=name: ALL_FAMILIES[name])
                   for name in sorted(ALL_FAMILIES))
    if not synth_count:
        return handwritten
    if synth_count > synth.MAX_SYNTH_FAMILIES:
        raise ValueError(f"synth_count {synth_count} exceeds the "
                         f"{synth.MAX_SYNTH_FAMILIES}-family cap")
    seed = 2018 if synth_seed is None else synth_seed
    synthesized = ((synth.family_name(index),
                    lambda index=index: synth.synth_family(seed, index))
                   for index in range(synth_count))
    return merge(handwritten, synthesized, key=lambda pair: pair[0])


#: Family name carried by every shader brought in via ``--import-dir``.
IMPORTED_FAMILY = "imported"


def _imported_cases(import_dir: str) -> Iterator[ShaderCase]:
    """Ingest every shader file under *import_dir*, in sorted-path order.

    Case names derive from the file's path relative to the import root
    (separators and suffix folded away), so two files with the same stem
    in different subdirectories stay distinct.
    """
    from pathlib import Path

    from repro.glsl.ingest import ingest_file, iter_shader_files

    root = Path(import_dir)
    for path in iter_shader_files(root):
        rel = path.relative_to(root)
        name = "__".join(rel.parts)[: -len(path.suffix)]
        result = ingest_file(path)
        yield ShaderCase(name=name, family=IMPORTED_FAMILY,
                         source=result.canonical)


def iter_corpus(families: Optional[List[str]] = None,
                synth_seed: Optional[int] = None,
                synth_count: int = 0,
                import_dir: Optional[str] = None) -> Iterator[ShaderCase]:
    """Lazily yield the corpus stream in deterministic order.

    Order is family name (sorted), then variant order within the family.
    ``families`` restricts to named families.  Synthesized families are
    built on demand, so truncated consumers (``islice``, sharding) never
    pay instantiation cost for cases they skip past the stream's tail.
    With ``import_dir``, every shader file under that directory is ingested
    through :mod:`repro.glsl.ingest` and joins the stream as the
    ``imported`` family, merged into the same sorted-name order.
    """
    def base_cases(make: Callable[[], Family]) -> Callable[[], Iterator[ShaderCase]]:
        def build() -> Iterator[ShaderCase]:
            family = make()
            for variant in family.variants:
                yield family.instantiate(variant)
        return build

    stream: Iterator[Tuple[str, Callable[[], Iterator[ShaderCase]]]] = (
        (name, base_cases(make))
        for name, make in _family_stream(synth_seed, synth_count))
    if import_dir is not None:
        imported = iter(
            [(IMPORTED_FAMILY,
              lambda: _imported_cases(import_dir))])  # type: ignore[list-item]
        stream = merge(stream, imported, key=lambda pair: pair[0])
    for name, build in stream:
        if families is not None and name not in families:
            continue
        yield from build()


def default_corpus(max_shaders: Optional[int] = None,
                   families: Optional[List[str]] = None,
                   synth_seed: Optional[int] = None,
                   synth_count: int = 0,
                   import_dir: Optional[str] = None) -> List[ShaderCase]:
    """The default study corpus: every instance of every family.

    ``families`` restricts to named families; ``max_shaders`` truncates (for
    quick test runs) — lazily, via :func:`iter_corpus`, so a truncated run
    over a huge synthesized corpus only instantiates the cases it keeps.
    ``synth_seed``/``synth_count`` append the procedural families from
    :mod:`repro.corpus.synth`; ``import_dir`` merges in ingested wild
    shaders as the ``imported`` family.  Order is deterministic: family
    name, then variant order within the family.
    """
    stream = iter_corpus(families=families, synth_seed=synth_seed,
                         synth_count=synth_count, import_dir=import_dir)
    if max_shaders is not None:
        return list(islice(stream, max_shaders))
    return list(stream)
