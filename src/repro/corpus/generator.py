"""Corpus assembly: instantiate every family and expose the default corpus."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.corpus.templates import ALL_FAMILIES
from repro.corpus.ubershader import Family
from repro.harness.results import ShaderCase


def corpus_families() -> Dict[str, Family]:
    """All übershader families by name."""
    return dict(ALL_FAMILIES)


def default_corpus(max_shaders: Optional[int] = None,
                   families: Optional[List[str]] = None) -> List[ShaderCase]:
    """The default study corpus: every instance of every family.

    ``families`` restricts to named families; ``max_shaders`` truncates (for
    quick test runs).  Order is deterministic: family name, then variant
    order within the family.
    """
    cases: List[ShaderCase] = []
    for name in sorted(ALL_FAMILIES):
        if families is not None and name not in families:
            continue
        cases.extend(ALL_FAMILIES[name].instances())
    if max_shaders is not None:
        cases = cases[:max_shaders]
    return cases
