"""Übershader machinery: a family = one template body + named #define sets.

Paper Section IV-A: "a single file containing numerous graphics techniques
is customised via preprocessor directives to enable or disable sections when
generating shader instances ... forming families of similar shaders".
Instances carry their defines as a real ``#define`` block so the corpus
sources look like the extracted GFXBench ones and the LoC-after-preprocess
metric is exercised for real.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.harness.results import ShaderCase


@dataclass(frozen=True)
class Variant:
    """One specialisation of a family (a named set of #defines)."""

    name: str
    defines: Dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class Family:
    """One übershader: a template body plus its named #define variant sets."""
    name: str
    template: str
    variants: List[Variant] = field(default_factory=list)

    def instantiate(self, variant: Variant) -> ShaderCase:
        define_block = "".join(
            f"#define {key} {value}".rstrip() + "\n"
            for key, value in sorted(variant.defines.items())
        )
        source = "#version 450\n" + define_block + self.template
        return ShaderCase(name=f"{self.name}.{variant.name}",
                          family=self.name, source=source)

    def instances(self) -> List[ShaderCase]:
        return [self.instantiate(variant) for variant in self.variants]
