"""The exhaustive iterative-compilation study (paper Sections III-A, IV).

For every corpus shader: compile all 256 flag combinations, deduplicate the
emitted GLSL (most combinations collapse — Fig. 4c), then time every unique
variant plus the unaltered original on every platform through the simulated
execution environments.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.pipeline import ShaderCompiler
from repro.glsl.metrics import lines_of_code
from repro.gpu.platform import Platform, all_platforms
from repro.harness.environment import ShaderExecutionEnvironment
from repro.harness.results import ShaderCase, ShaderResult, StudyResult, VariantRecord


@dataclass
class StudyConfig:
    platforms: Optional[Sequence[Platform]] = None
    seed: int = 2018
    #: measure the emitted ES dialect on mobile platforms (the paper's
    #: glslang+SPIRV-Cross conversion path); the default keeps one dialect
    #: for all platforms, which dedups compiles across platforms.
    verbose: bool = False


def run_study(corpus: Sequence[ShaderCase],
              config: Optional[StudyConfig] = None) -> StudyResult:
    config = config or StudyConfig()
    platforms = list(config.platforms or all_platforms())
    result = StudyResult(platforms=[p.name for p in platforms],
                         seed=config.seed)
    environments = {p.name: ShaderExecutionEnvironment(p) for p in platforms}

    for case_index, case in enumerate(corpus):
        if config.verbose:
            print(f"[study] {case_index + 1}/{len(corpus)} {case.name}")
        shader_result = _run_one(case, case_index, platforms, environments,
                                 config.seed)
        result.shaders.append(shader_result)
    return result


def _run_one(case: ShaderCase, case_index: int, platforms: List[Platform],
             environments: Dict[str, ShaderExecutionEnvironment],
             seed: int) -> ShaderResult:
    from repro.analysis.cycle_analyzer import arm_static_cycles

    compiler = ShaderCompiler(case.source)
    variant_set = compiler.all_variants()

    shader_result = ShaderResult(
        name=case.name,
        family=case.family,
        loc=lines_of_code(case.source),
        arm_static_cycles=arm_static_cycles(case.source),
    )

    # Time the unaltered original on each platform.
    for platform in platforms:
        env = environments[platform.name]
        report = env.run(case.source, seed=_variant_seed(seed, case_index, -1))
        shader_result.original_times_ns[platform.name] = report.measurement.mean_ns

    # Deterministic variant ordering: by smallest producing flag index.
    ordered = sorted(variant_set.items(),
                     key=lambda kv: min(f.index for f in kv[1]))
    for variant_id, (text, combos) in enumerate(ordered):
        record = VariantRecord(
            variant_id=variant_id,
            flag_indices=sorted(f.index for f in combos),
            text_hash=hashlib.sha256(text.encode()).hexdigest()[:16],
        )
        for platform in platforms:
            env = environments[platform.name]
            report = env.run(text, seed=_variant_seed(seed, case_index,
                                                      variant_id))
            record.times_ns[platform.name] = report.measurement.mean_ns
            record.static_ops[platform.name] = report.cost.static_ops
            record.registers[platform.name] = report.cost.registers
        shader_result.variants.append(record)
    return shader_result


def _variant_seed(seed: int, case_index: int, variant_id: int) -> int:
    return seed * 7_919 + case_index * 257 + (variant_id + 2)
