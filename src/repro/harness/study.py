"""The exhaustive iterative-compilation study (paper Sections III-A, IV).

For every corpus shader: compile all 256 flag combinations, deduplicate the
emitted GLSL (most combinations collapse — Fig. 4c), then time every unique
variant plus the unaltered original on every platform.

The study now runs on the :mod:`repro.search` layers — the
:class:`EvaluationEngine` (compile/measure with a content-addressed result
cache) and the :class:`Scheduler`.  With ``max_workers > 1`` a process pool
primes the engine first (the work is pure-Python and CPU-bound, so threads
would serialize on the GIL): one task per unique shader source compiles the
256-combination variant set (via the shared-prefix compilation trie,
:mod:`repro.core.trie`), then the uncached (shader x variant x platform)
units are measured in per-text :class:`MeasureBatch` groups so each emitted
shader pickles across the process boundary once rather than once per unit.
Assembly then reads everything back through the engine's cache.  Compiles
and measurements are pure functions of their inputs, so serial runs,
parallel runs, and the pre-refactor nested loop all produce byte-identical
:class:`StudyResult` JSON.

With ``cache_path`` set, the cache persists both measurements and compiled
variant sets, so a repeated study — and the ``repro report`` pipeline built
on top of it — replays from disk with zero compiles and zero measurements.

Large corpora (see ``repro.corpus.synth``) add two scale-out levers:

- **Sharding** (``shard=ShardSpec.parse("2/3")``): the corpus is striped
  deterministically across shards (global index mod shard count), each
  shard runs independently — on one machine or many — and
  :func:`repro.harness.results.merge_study_results` reassembles a result
  byte-identical to the unsharded run.  This works because every
  measurement seed derives from the *global* corpus index, which shard runs
  carry along.
- **Streaming** (``checkpoint_every=N``): per-case results land in the
  result cache incrementally (a ``.jsonl`` cache path appends entry-by-
  entry instead of rewriting one JSON blob), and each finished case's
  compiled variant texts are released from the engine's in-process memos.
  A serial streaming run holds one case's variants in memory; a parallel
  one primes in chunks of ``checkpoint_every x max_workers`` cases, so
  memory is bounded by the chunk, never the corpus.

Under ``REPRO_COMPILE=corpus`` every compilation in the study — the offline
256-variant walks *and* the vendor JIT pipelines behind each measurement —
routes through the corpus-global state trie
(:mod:`repro.core.corpus_trie`), so overlapping pipeline steps run once per
distinct IR state for the whole run.  The sharing unit is the process: the
main process (and its ``--jobs`` measurement threads, which share the
engine) uses one trie, each process-pool priming worker builds its own, and
shard runs are trie-local with their hit statistics merged by ``repro
merge-results --trie-stats``.  Sharing is an optimization, never a
dependency — results stay byte-identical across all three compile modes,
worker counts, and shard layouts (``tests/test_corpus_trie.py``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import ShaderCompiler, VariantSet, compile_mode
from repro.glsl.metrics import lines_of_code
from repro.gpu.platform import Platform, all_platforms, platform_by_name
from repro.harness.environment import ShaderExecutionEnvironment
from repro.harness.results import (
    ShaderCase, ShaderResult, ShardInfo, StudyResult, VariantRecord,
)
from repro.search.cache import ResultCache, make_key, source_digest
from repro.search.engine import EvaluationEngine
from repro.search.scheduler import MeasureBatch, Scheduler, WorkUnit


@dataclass(frozen=True)
class ShardSpec:
    """One slice of a sharded study: shard *index* (1-based) of *count*.

    Cases are striped by global corpus index (``index mod count``), so
    every shard gets a balanced mix of small and large families instead of
    one shard inheriting the whole synth tail.
    """

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"shard count must be >= 1, got {self.count}")
        if not 1 <= self.index <= self.count:
            raise ValueError(
                f"shard index must be in 1..{self.count}, got {self.index}")

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse the CLI form ``"I/N"`` (e.g. ``"2/3"``)."""
        head, sep, tail = text.partition("/")
        try:
            if not sep:
                raise ValueError
            index, count = int(head), int(tail)
        except ValueError:
            raise ValueError(
                f"shard spec must look like 'I/N' (e.g. '2/3'), "
                f"got {text!r}") from None
        # Range errors get the precise __post_init__ message, not the
        # format one — '0/3' is well-formed, just out of range.
        return cls(index=index, count=count)

    def select(self, total: int) -> List[int]:
        """The global corpus indices belonging to this shard."""
        return [i for i in range(total) if i % self.count == self.index - 1]

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


@dataclass
class StudyConfig:
    """Everything that parameterizes one ``run_study`` invocation."""

    platforms: Optional[Sequence[Platform]] = None
    seed: int = 2018
    verbose: bool = False
    #: worker processes for compile/measure sharding; 1 = serial, None =
    #: honor the REPRO_JOBS environment variable (serial when unset).
    max_workers: Optional[int] = None
    #: optional on-disk store for the result cache; repeated studies and
    #: benchmark runs skip recompilation/re-measurement.  A ``.jsonl`` path
    #: selects the append-only streaming store.
    cache_path: Optional[str] = None
    #: run only this shard of the corpus (see :class:`ShardSpec`); the
    #: result carries :class:`~repro.harness.results.ShardInfo` so
    #: ``merge_study_results`` can reassemble the full study.
    shard: Optional[ShardSpec] = None
    #: when > 0: persist the result cache after every N cases and release
    #: each finished case's compiled variant texts from the engine's
    #: in-process memos (streaming mode — memory stays bounded by one case
    #: serially, or by one N x max_workers priming chunk in parallel runs).
    checkpoint_every: int = 0
    #: called as ``progress(position, total, shader_result)`` after each
    #: finished case — the incremental-streaming hook the study service
    #: uses to publish per-case results while a job is still running.
    progress: Optional[Callable[[int, int, ShaderResult], None]] = None
    #: when set, this file is touched at study start and after every
    #: finished case — the liveness signal dispatch supervision watches: a
    #: worker whose heartbeat goes stale is presumed hung and killed.
    heartbeat_path: Optional[str] = None


def run_study(corpus: Sequence[ShaderCase],
              config: Optional[StudyConfig] = None,
              engine: Optional[EvaluationEngine] = None,
              scheduler: Optional[Scheduler] = None) -> StudyResult:
    """Run the exhaustive study over *corpus* (or one shard of it).

    Serial runs, parallel runs, shard runs merged back together, and warm
    cache replays all produce byte-identical :class:`StudyResult` JSON.
    """
    config = config or StudyConfig()
    platforms = list(config.platforms or all_platforms())
    if engine is None:
        engine = EvaluationEngine(platforms=platforms, seed=config.seed,
                                  cache=ResultCache(config.cache_path))
    scheduler = scheduler or Scheduler(config.max_workers, kind="process")

    cases = list(corpus)
    case_indices = list(range(len(cases)))
    shard_info = None
    if config.shard is not None:
        full_digest = corpus_digest(cases)
        case_indices = config.shard.select(len(cases))
        cases = [cases[i] for i in case_indices]
        shard_info = ShardInfo(index=config.shard.index,
                               count=config.shard.count,
                               case_indices=list(case_indices),
                               corpus_digest=full_digest)
        if config.verbose:
            print(f"[study] shard {config.shard}: {len(cases)} of "
                  f"{len(corpus)} cases")

    # Streaming bounds memory by releasing each finished case's compiled
    # variants — so a parallel run must also prime in bounded chunks, or
    # _prime_engine would install the whole corpus's variant sets up front.
    chunk_size = len(cases) or 1
    if scheduler.parallel and config.checkpoint_every > 0:
        chunk_size = config.checkpoint_every * scheduler.max_workers

    result = StudyResult(platforms=[p.name for p in platforms],
                         seed=config.seed, shard=shard_info)
    _beat(config.heartbeat_path)
    position = 0
    for start in range(0, len(cases), chunk_size):
        chunk = cases[start:start + chunk_size]
        chunk_indices = case_indices[start:start + chunk_size]
        if scheduler.parallel:
            _prime_engine(chunk, chunk_indices, platforms, engine, scheduler,
                          config.seed, config.verbose)
        for case, case_index in zip(chunk, chunk_indices):
            # Cooperative cancellation boundary: a service job's timeout or
            # client cancel lands here between cases (and, finer-grained,
            # at every compile/measure inside _run_one).
            engine.check_cancelled()
            position += 1
            if config.verbose:
                print(f"[study] {position}/{len(cases)} {case.name}")
            result.shaders.append(
                _run_one(case, case_index, platforms, engine, config.seed))
            if config.progress is not None:
                config.progress(position, len(cases), result.shaders[-1])
            _beat(config.heartbeat_path)
            if config.checkpoint_every > 0:
                engine.release_case(case.source)
                if position % config.checkpoint_every == 0:
                    engine.cache.save()
    engine.cache.save()
    if config.verbose and compile_mode() == "corpus":
        stats = engine.corpus_stats
        print(f"[study] corpus trie: {stats.hits} step hits, "
              f"{stats.pass_runs} step runs, {stats.interned_states} "
              f"interned states, {stats.emits} emits "
              f"(+{stats.emit_hits} emit hits)")
    return result


def corpus_digest(cases: Sequence[ShaderCase]) -> str:
    """Content hash of the whole corpus, in order — the identity shard
    merging checks so shards from different corpora cannot be combined.
    The dispatcher reuses it as the shard checkpoint identity."""
    digest = hashlib.sha256()
    for case in cases:
        digest.update(source_digest(case.source).encode())
    return digest.hexdigest()


def _beat(path: Optional[str]) -> None:
    """Touch the heartbeat file (best effort — liveness reporting must
    never kill the study it reports on)."""
    if not path:
        return
    try:
        Path(path).parent.mkdir(parents=True, exist_ok=True)
        Path(path).touch()
    except OSError:
        pass


def _run_one(case: ShaderCase, case_index: int, platforms: List[Platform],
             engine: EvaluationEngine, seed: int) -> ShaderResult:
    from repro.analysis.cycle_analyzer import arm_static_cycles

    variant_set = engine.variants_for(case)

    shader_result = ShaderResult(
        name=case.name,
        family=case.family,
        loc=lines_of_code(case.source),
        arm_static_cycles=arm_static_cycles(case.source),
    )

    for platform in platforms:
        sample = engine.measure(case.source, platform.name,
                                _variant_seed(seed, case_index, -1))
        shader_result.original_times_ns[platform.name] = sample.mean_ns

    for variant_id, (text, combos) in enumerate(_ordered_variants(variant_set)):
        record = VariantRecord(
            variant_id=variant_id,
            flag_indices=sorted(f.index for f in combos),
            text_hash=hashlib.sha256(text.encode()).hexdigest()[:16],
        )
        for platform in platforms:
            sample = engine.measure(text, platform.name,
                                    _variant_seed(seed, case_index,
                                                  variant_id))
            record.times_ns[platform.name] = sample.mean_ns
            record.static_ops[platform.name] = sample.static_ops
            record.registers[platform.name] = sample.registers
        shader_result.variants.append(record)
    return shader_result


def _ordered_variants(variant_set: VariantSet):
    """Deterministic variant ordering: by smallest producing flag index."""
    return sorted(variant_set.items(),
                  key=lambda kv: min(f.index for f in kv[1]))


# ---------------------------------------------------------------------------
# Parallel priming: shard the CPU-bound work across a process pool, land
# everything in the engine's memos/cache, and let assembly read it back.
# ---------------------------------------------------------------------------


def _prime_engine(corpus: Sequence[ShaderCase], case_indices: Sequence[int],
                  platforms: List[Platform], engine: EvaluationEngine,
                  scheduler: Scheduler, seed: int, verbose: bool) -> None:
    """Shard the CPU-bound work across the pool and land it in the cache.

    ``case_indices`` carries each case's *global* corpus index — measurement
    seeds are derived from it, which is what keeps shard runs byte-
    compatible with the unsharded study.
    """
    # Phase 1: one task per unique un-memoized source compiles all 256
    # combinations (the dominant cost: ~256 pass-pipeline runs each).
    sources: List[str] = []
    seen = set()
    for case in corpus:
        digest = source_digest(case.source)
        if digest not in seen and not engine.has_variants(case.source):
            seen.add(digest)
            sources.append(case.source)
    if verbose and sources:
        print(f"[study] compiling {len(sources)} shaders "
              f"x 256 combinations on {scheduler.max_workers} workers")
    for source, index_to_text in zip(
            sources, scheduler.map(_compile_case_variants, sources)):
        engine.prime_variants(source, index_to_text)
        # Pool workers bypass the engine, so account their work here —
        # otherwise a cold parallel run reports the same zero counters as
        # a warm-cache replay.
        engine.frontend_count += 1
        engine.compile_count += 256

    # Phase 2: uncached (shader x variant x platform) units, batched per
    # shader text so the pool pickles each text once (instead of once per
    # variant x platform) and the worker's shared JIT front-end memo parses
    # it once for all of the batch's platforms.
    units: List[WorkUnit] = []
    for case, case_index in zip(corpus, case_indices):
        variant_set = engine.variants_for(case)
        units.extend(
            WorkUnit(case_index=case_index, variant_id=-1,
                     platform=platform.name, text=case.source,
                     seed=_variant_seed(seed, case_index, -1))
            for platform in platforms)
        for variant_id, (text, _) in enumerate(_ordered_variants(variant_set)):
            units.extend(
                WorkUnit(case_index=case_index, variant_id=variant_id,
                         platform=platform.name, text=text,
                         seed=_variant_seed(seed, case_index, variant_id))
                for platform in platforms)
    pending = [unit for unit in units
               if make_key(unit.text, -1, unit.platform, unit.seed)
               not in engine.cache]
    by_text: Dict[str, List[WorkUnit]] = {}
    for unit in pending:
        by_text.setdefault(unit.text, []).append(unit)
    batches = [MeasureBatch(text=text,
                            tasks=tuple((unit.platform, unit.seed)
                                        for unit in text_units))
               for text, text_units in by_text.items()]
    if verbose and pending:
        print(f"[study] measuring {len(pending)} units in {len(batches)} "
              f"text batches on {scheduler.max_workers} workers")
    for batch, measured in zip(batches, scheduler.map(_measure_batch, batches)):
        for (platform_name, unit_seed), sample in zip(batch.tasks, measured):
            mean_ns, static_ops, registers = sample
            engine.measure_count += 1
            engine.cache.put(
                make_key(batch.text, -1, platform_name, unit_seed),
                {"mean_ns": mean_ns, "static_ops": static_ops,
                 "registers": registers})


def _compile_case_variants(source: str) -> Dict[int, str]:
    """Pool worker: emitted text for all 256 combinations of one shader
    (module-level so it pickles into process-pool workers).

    The compile mode travels via the inherited ``REPRO_COMPILE`` env var;
    under ``corpus`` each worker process compiles through its own
    process-global shared trie (states cannot cross process boundaries, so
    sharing is per-worker — byte-identity never depends on it).
    """
    return ShaderCompiler(source).all_variants().index_to_text


def _measure_batch(batch: MeasureBatch) -> List[Tuple[float, int, int]]:
    """Pool worker: measure one shader text on every (platform, seed) task.

    The text crosses the process boundary once per batch; the vendor JITs'
    shared front-end memo then parses it once for all platforms here.  The
    batch's tasks are grouped per platform and run through
    :meth:`~repro.harness.environment.ShaderExecutionEnvironment.run_many`,
    so in the default ``REPRO_MEASURE=batched`` mode each (text, platform)
    unit compiles, profiles, and costs once no matter how many measurement
    seeds it carries.
    """
    by_platform: Dict[str, List[Tuple[int, int]]] = {}
    for position, (platform_name, seed) in enumerate(batch.tasks):
        by_platform.setdefault(platform_name, []).append((position, seed))
    results: List[Optional[Tuple[float, int, int]]] = [None] * len(batch.tasks)
    for platform_name, tasks in by_platform.items():
        env = ShaderExecutionEnvironment(platform_by_name(platform_name))
        reports = env.run_many(batch.text, [seed for _, seed in tasks])
        for (position, _), report in zip(tasks, reports):
            results[position] = (report.measurement.mean_ns,
                                 report.cost.static_ops,
                                 report.cost.registers)
    return results  # type: ignore[return-value]


def _variant_seed(seed: int, case_index: int, variant_id: int) -> int:
    return seed * 7_919 + case_index * 257 + (variant_id + 2)
