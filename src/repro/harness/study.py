"""The exhaustive iterative-compilation study (paper Sections III-A, IV).

For every corpus shader: compile all 256 flag combinations, deduplicate the
emitted GLSL (most combinations collapse — Fig. 4c), then time every unique
variant plus the unaltered original on every platform.

The study now runs on the :mod:`repro.search` layers — the
:class:`EvaluationEngine` (compile/measure with a content-addressed result
cache) and the :class:`Scheduler`.  With ``max_workers > 1`` a process pool
primes the engine first (the work is pure-Python and CPU-bound, so threads
would serialize on the GIL): one task per unique shader source compiles the
256-combination variant set (via the shared-prefix compilation trie,
:mod:`repro.core.trie`), then the uncached (shader x variant x platform)
units are measured in per-text :class:`MeasureBatch` groups so each emitted
shader pickles across the process boundary once rather than once per unit.
Assembly then reads everything back through the engine's cache.  Compiles
and measurements are pure functions of their inputs, so serial runs,
parallel runs, and the pre-refactor nested loop all produce byte-identical
:class:`StudyResult` JSON.

With ``cache_path`` set, the cache persists both measurements and compiled
variant sets, so a repeated study — and the ``repro report`` pipeline built
on top of it — replays from disk with zero compiles and zero measurements.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import ShaderCompiler, VariantSet
from repro.glsl.metrics import lines_of_code
from repro.gpu.platform import Platform, all_platforms, platform_by_name
from repro.harness.environment import ShaderExecutionEnvironment
from repro.harness.results import ShaderCase, ShaderResult, StudyResult, VariantRecord
from repro.search.cache import ResultCache, make_key, source_digest
from repro.search.engine import EvaluationEngine
from repro.search.scheduler import MeasureBatch, Scheduler, WorkUnit


@dataclass
class StudyConfig:
    platforms: Optional[Sequence[Platform]] = None
    seed: int = 2018
    verbose: bool = False
    #: worker processes for compile/measure sharding; 1 = serial, None =
    #: honor the REPRO_JOBS environment variable (serial when unset).
    max_workers: Optional[int] = None
    #: optional on-disk JSON store for the result cache; repeated studies
    #: and benchmark runs skip recompilation/re-measurement.
    cache_path: Optional[str] = None


def run_study(corpus: Sequence[ShaderCase],
              config: Optional[StudyConfig] = None,
              engine: Optional[EvaluationEngine] = None,
              scheduler: Optional[Scheduler] = None) -> StudyResult:
    config = config or StudyConfig()
    platforms = list(config.platforms or all_platforms())
    if engine is None:
        engine = EvaluationEngine(platforms=platforms, seed=config.seed,
                                  cache=ResultCache(config.cache_path))
    scheduler = scheduler or Scheduler(config.max_workers, kind="process")

    if scheduler.parallel:
        _prime_engine(corpus, platforms, engine, scheduler, config.seed,
                      config.verbose)

    result = StudyResult(platforms=[p.name for p in platforms],
                         seed=config.seed)
    for case_index, case in enumerate(corpus):
        if config.verbose:
            print(f"[study] {case_index + 1}/{len(corpus)} {case.name}")
        result.shaders.append(
            _run_one(case, case_index, platforms, engine, config.seed))
    engine.cache.save()
    return result


def _run_one(case: ShaderCase, case_index: int, platforms: List[Platform],
             engine: EvaluationEngine, seed: int) -> ShaderResult:
    from repro.analysis.cycle_analyzer import arm_static_cycles

    variant_set = engine.variants_for(case)

    shader_result = ShaderResult(
        name=case.name,
        family=case.family,
        loc=lines_of_code(case.source),
        arm_static_cycles=arm_static_cycles(case.source),
    )

    for platform in platforms:
        sample = engine.measure(case.source, platform.name,
                                _variant_seed(seed, case_index, -1))
        shader_result.original_times_ns[platform.name] = sample.mean_ns

    for variant_id, (text, combos) in enumerate(_ordered_variants(variant_set)):
        record = VariantRecord(
            variant_id=variant_id,
            flag_indices=sorted(f.index for f in combos),
            text_hash=hashlib.sha256(text.encode()).hexdigest()[:16],
        )
        for platform in platforms:
            sample = engine.measure(text, platform.name,
                                    _variant_seed(seed, case_index,
                                                  variant_id))
            record.times_ns[platform.name] = sample.mean_ns
            record.static_ops[platform.name] = sample.static_ops
            record.registers[platform.name] = sample.registers
        shader_result.variants.append(record)
    return shader_result


def _ordered_variants(variant_set: VariantSet):
    """Deterministic variant ordering: by smallest producing flag index."""
    return sorted(variant_set.items(),
                  key=lambda kv: min(f.index for f in kv[1]))


# ---------------------------------------------------------------------------
# Parallel priming: shard the CPU-bound work across a process pool, land
# everything in the engine's memos/cache, and let assembly read it back.
# ---------------------------------------------------------------------------


def _prime_engine(corpus: Sequence[ShaderCase], platforms: List[Platform],
                  engine: EvaluationEngine, scheduler: Scheduler, seed: int,
                  verbose: bool) -> None:
    # Phase 1: one task per unique un-memoized source compiles all 256
    # combinations (the dominant cost: ~256 pass-pipeline runs each).
    sources: List[str] = []
    seen = set()
    for case in corpus:
        digest = source_digest(case.source)
        if digest not in seen and not engine.has_variants(case.source):
            seen.add(digest)
            sources.append(case.source)
    if verbose and sources:
        print(f"[study] compiling {len(sources)} shaders "
              f"x 256 combinations on {scheduler.max_workers} workers")
    for source, index_to_text in zip(
            sources, scheduler.map(_compile_case_variants, sources)):
        engine.prime_variants(source, index_to_text)
        # Pool workers bypass the engine, so account their work here —
        # otherwise a cold parallel run reports the same zero counters as
        # a warm-cache replay.
        engine.frontend_count += 1
        engine.compile_count += 256

    # Phase 2: uncached (shader x variant x platform) units, batched per
    # shader text so the pool pickles each text once (instead of once per
    # variant x platform) and the worker's shared JIT front-end memo parses
    # it once for all of the batch's platforms.
    units: List[WorkUnit] = []
    for case_index, case in enumerate(corpus):
        variant_set = engine.variants_for(case)
        units.extend(
            WorkUnit(case_index=case_index, variant_id=-1,
                     platform=platform.name, text=case.source,
                     seed=_variant_seed(seed, case_index, -1))
            for platform in platforms)
        for variant_id, (text, _) in enumerate(_ordered_variants(variant_set)):
            units.extend(
                WorkUnit(case_index=case_index, variant_id=variant_id,
                         platform=platform.name, text=text,
                         seed=_variant_seed(seed, case_index, variant_id))
                for platform in platforms)
    pending = [unit for unit in units
               if make_key(unit.text, -1, unit.platform, unit.seed)
               not in engine.cache]
    by_text: Dict[str, List[WorkUnit]] = {}
    for unit in pending:
        by_text.setdefault(unit.text, []).append(unit)
    batches = [MeasureBatch(text=text,
                            tasks=tuple((unit.platform, unit.seed)
                                        for unit in text_units))
               for text, text_units in by_text.items()]
    if verbose and pending:
        print(f"[study] measuring {len(pending)} units in {len(batches)} "
              f"text batches on {scheduler.max_workers} workers")
    for batch, measured in zip(batches, scheduler.map(_measure_batch, batches)):
        for (platform_name, unit_seed), sample in zip(batch.tasks, measured):
            mean_ns, static_ops, registers = sample
            engine.measure_count += 1
            engine.cache.put(
                make_key(batch.text, -1, platform_name, unit_seed),
                {"mean_ns": mean_ns, "static_ops": static_ops,
                 "registers": registers})


def _compile_case_variants(source: str) -> Dict[int, str]:
    """Pool worker: emitted text for all 256 combinations of one shader
    (module-level so it pickles into process-pool workers)."""
    return ShaderCompiler(source).all_variants().index_to_text


def _measure_batch(batch: MeasureBatch) -> List[Tuple[float, int, int]]:
    """Pool worker: measure one shader text on every (platform, seed) task.

    The text crosses the process boundary once per batch; the vendor JITs'
    shared front-end memo then parses it once for all platforms here.
    """
    results: List[Tuple[float, int, int]] = []
    for platform_name, seed in batch.tasks:
        env = ShaderExecutionEnvironment(platform_by_name(platform_name))
        report = env.run(batch.text, seed=seed)
        results.append((report.measurement.mean_ns, report.cost.static_ops,
                        report.cost.registers))
    return results


def _variant_seed(seed: int, case_index: int, variant_id: int) -> int:
    return seed * 7_919 + case_index * 257 + (variant_id + 2)
