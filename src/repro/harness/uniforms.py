"""Default uniform initialisation via shader introspection.

Paper Section IV-B: "we used shader introspection to ascertain types and
sizes for all uniform inputs.  The framework then initialised them
automatically to default values (e.g. 0.5 for floats, or a
colourfully-patterned opaque power-of-two image for texture bindings)."
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.glsl import types as T
from repro.glsl.introspect import ShaderInterface
from repro.ir.textures import ProceduralTexture

_FLOAT_DEFAULT = 0.5
_INT_DEFAULT = 1


def default_scalar(kind: T.ScalarKind):
    """The paper's default filler value for one scalar uniform element."""
    if kind == T.ScalarKind.FLOAT:
        return _FLOAT_DEFAULT
    if kind == T.ScalarKind.BOOL:
        return True
    return _INT_DEFAULT


def default_value(ty: T.GLSLType):
    """Default runtime value for one uniform of GLSL type *ty*."""
    if isinstance(ty, T.Scalar):
        return default_scalar(ty.kind)
    if isinstance(ty, T.Vector):
        return tuple(default_scalar(ty.kind) for _ in range(ty.size))
    if isinstance(ty, T.Matrix):
        # Scaled identity keeps matrix-heavy shaders numerically tame.
        return tuple(
            tuple(_FLOAT_DEFAULT if row == col else 0.0 for row in range(ty.size))
            for col in range(ty.size)
        )
    if isinstance(ty, T.Array):
        return [default_value(ty.element) for _ in range(ty.length or 1)]
    raise ValueError(f"no default for uniform type {ty}")


def default_uniform_values(interface: ShaderInterface) -> Dict[str, object]:
    """Values for every non-sampler uniform."""
    values: Dict[str, object] = {}
    for var in interface.uniforms:
        if var.is_sampler:
            continue
        values[var.name] = default_value(var.ty)
    return values


def default_textures(interface: ShaderInterface) -> Dict[str, ProceduralTexture]:
    """A distinct procedural pattern per texture binding."""
    textures: Dict[str, ProceduralTexture] = {}
    for index, var in enumerate(interface.samplers):
        textures[var.name] = ProceduralTexture(seed=index + 1)
    return textures


def fragment_inputs(interface: ShaderInterface,
                    position: Tuple[float, float]) -> Dict[str, object]:
    """Per-fragment values for stage inputs.

    A ``vec2`` input is assumed to be a texture coordinate and receives the
    fragment's normalized position; wider inputs get position-derived data;
    scalars get the default 0.5.  This mirrors the harness's full-screen quad
    with auto-generated vertex shaders: varyings interpolate screen-space
    coordinates.
    """
    x, y = position
    values: Dict[str, object] = {}
    for var in interface.inputs:
        ty = var.ty
        if isinstance(ty, T.Vector) and ty.kind == T.ScalarKind.FLOAT:
            full = (x, y, 0.5, 1.0)
            values[var.name] = full[: ty.size]
        elif isinstance(ty, T.Scalar):
            values[var.name] = default_scalar(ty.kind)
        elif isinstance(ty, T.Vector):
            values[var.name] = tuple(default_scalar(ty.kind)
                                     for _ in range(ty.size))
        else:
            values[var.name] = default_value(ty)
    return values


def batch_fragment_inputs(
        interface: ShaderInterface,
        positions: Sequence[Tuple[float, float]]) -> List[Dict[str, object]]:
    """One stage-input dict per sample position — the lanes of a batched
    interpreter run.

    Introspection is walked once for the whole batch; only the
    position-derived varyings differ between lanes, so the
    position-independent defaults are computed once and shared (the values
    are immutable tuples/scalars, safe to alias across lane dicts).
    """
    plan: List[Tuple[str, int, object]] = []
    for var in interface.inputs:
        ty = var.ty
        if isinstance(ty, T.Vector) and ty.kind == T.ScalarKind.FLOAT:
            plan.append((var.name, ty.size, None))
        elif isinstance(ty, T.Scalar):
            plan.append((var.name, 0, default_scalar(ty.kind)))
        elif isinstance(ty, T.Vector):
            plan.append((var.name, 0, tuple(default_scalar(ty.kind)
                                            for _ in range(ty.size))))
        else:
            plan.append((var.name, 0, default_value(ty)))
    return [{name: ((x, y, 0.5, 1.0)[:size] if shared is None else shared)
             for name, size, shared in plan}
            for x, y in positions]
