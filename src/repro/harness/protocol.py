"""The measurement protocol: 100 frames x 5 repeats of timed draws.

Paper Section IV-B: draws are timed with GL_TIME_ELAPSED; "the tests were
run for 100 frames, and then repeated 5 times per shader variant.  These
large numbers of samples are used to reduce noise."  Each frame's sample is
the mean over the frame's draw calls; the protocol reports the mean of the
five repeat means plus dispersion statistics.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List

from repro.gpu.timing import TimerModel

FRAMES_PER_RUN = 100
REPEATS = 5


@dataclass
class Measurement:
    """Aggregated timing for one shader variant on one platform."""

    mean_ns: float
    std_ns: float
    repeat_means: List[float] = field(default_factory=list)

    @property
    def mean_us(self) -> float:
        return self.mean_ns / 1000.0


def run_protocol(true_ns: float, timer: TimerModel, rng: random.Random,
                 frames: int = FRAMES_PER_RUN, repeats: int = REPEATS,
                 draws_per_frame: int = 1,
                 batched: bool = True) -> Measurement:
    """Simulate the full measurement protocol for a known true draw time.

    ``batched`` (the default) samples each repeat's frames through
    :meth:`TimerModel.measure_many` — one hoisted pass over the frame loop
    instead of ``frames`` dispatches — producing bit-identical samples;
    ``batched=False`` keeps the reference per-frame loop
    (``REPRO_MEASURE=scalar``).
    """
    repeat_means: List[float] = []
    for _ in range(repeats):
        if batched:
            frame_samples = timer.measure_many(true_ns, rng, frames)
        else:
            frame_samples = []
            for _ in range(frames):
                # Per-frame sample: one representative timed draw (noise
                # across a frame's draws is highly correlated — thermal
                # state, clocks — so additional draws add little
                # independent information).
                frame_samples.append(timer.measure(true_ns, rng))
        repeat_means.append(sum(frame_samples) / len(frame_samples))
    mean = sum(repeat_means) / len(repeat_means)
    variance = sum((m - mean) ** 2 for m in repeat_means) / max(
        len(repeat_means) - 1, 1)
    return Measurement(mean_ns=mean, std_ns=math.sqrt(variance),
                       repeat_means=repeat_means)
