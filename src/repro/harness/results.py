"""Result records for the exhaustive study, with JSON (de)serialisation so
benchmarks can cache a completed study run on disk.

A :class:`StudyResult` may describe one *shard* of a larger study (see
``repro study --shard I/N``): it then carries a :class:`ShardInfo` naming
the global corpus indices it covers, and :func:`merge_study_results`
reassembles the full study — byte-identical to an unsharded run, because
every measurement seed is derived from the global index, not the position
within the shard.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.passes import OptimizationFlags


@dataclass
class ShaderCase:
    """One corpus shader instance."""

    name: str
    family: str
    source: str


@dataclass
class VariantRecord:
    """One distinct optimized text of one shader."""

    variant_id: int
    flag_indices: List[int]          # all combos (0..255) producing this text
    text_hash: str
    #: platform name -> measured mean ns
    times_ns: Dict[str, float] = field(default_factory=dict)
    static_ops: Dict[str, int] = field(default_factory=dict)
    registers: Dict[str, int] = field(default_factory=dict)


@dataclass
class ShaderResult:
    """Everything the study measured for one corpus shader."""
    name: str
    family: str
    loc: int
    arm_static_cycles: float
    variants: List[VariantRecord] = field(default_factory=list)
    #: platform name -> measured mean ns of the *unaltered* shader
    original_times_ns: Dict[str, float] = field(default_factory=dict)

    @property
    def unique_variant_count(self) -> int:
        return len(self.variants)

    def variant_for_flags(self, flags: OptimizationFlags) -> VariantRecord:
        # Lazily built flag-index -> variant map; rebuilt whenever variants
        # have been appended since the last lookup.
        cached = self.__dict__.get("_variants_by_index")
        if cached is None or cached[0] != len(self.variants):
            mapping = {index: variant
                       for variant in self.variants
                       for index in variant.flag_indices}
            cached = (len(self.variants), mapping)
            self.__dict__["_variants_by_index"] = cached
        try:
            return cached[1][flags.index]
        except KeyError:
            raise KeyError(
                f"no variant for flags {flags} in shader {self.name}") from None

    def speedup_pct(self, platform: str, flags: OptimizationFlags) -> float:
        """Percentage speed-up of *flags* over the unaltered shader."""
        base = self.original_times_ns[platform]
        time = self.variant_for_flags(flags).times_ns[platform]
        return (base / time - 1.0) * 100.0

    def variant_speedup_pct(self, platform: str, variant: VariantRecord) -> float:
        base = self.original_times_ns[platform]
        return (base / variant.times_ns[platform] - 1.0) * 100.0

    def best_speedup_pct(self, platform: str) -> float:
        return max(self.variant_speedup_pct(platform, v) for v in self.variants)


@dataclass(frozen=True)
class ShardInfo:
    """Which slice of the full corpus one shard result covers."""

    index: int                       # 1-based shard number
    count: int                       # total number of shards
    case_indices: List[int]          # global corpus index per shader, in order
    #: content hash of the *full* corpus (every case's source, in order) —
    #: merging refuses shards whose corpora differ, which names, indices,
    #: and seeds alone cannot detect (e.g. two --synth-seed values).
    corpus_digest: str = ""

    def validate(self, shader_count: int) -> None:
        """Raise ``ValueError`` on inconsistent shard metadata."""
        if not 1 <= self.index <= self.count:
            raise ValueError(f"shard index {self.index} outside 1..{self.count}")
        if len(self.case_indices) != shader_count:
            raise ValueError(
                f"shard {self.index}/{self.count} lists "
                f"{len(self.case_indices)} case indices for "
                f"{shader_count} shader results")


@dataclass
class StudyResult:
    """A completed study (or one shard of one): per-shader variant timings."""

    platforms: List[str]
    shaders: List[ShaderResult] = field(default_factory=list)
    seed: int = 0
    #: set only on shard runs; ``None`` means a complete study.
    shard: Optional[ShardInfo] = None

    def shader(self, name: str) -> ShaderResult:
        """The result for the shader named *name* (KeyError if absent)."""
        for result in self.shaders:
            if result.name == name:
                return result
        raise KeyError(name)

    # ------------------------------------------------------------------
    # Serialisation (benchmark caching)
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        """Serialize to JSON.  Complete studies omit the ``shard`` key, so
        their serialization is byte-identical whether the study ran whole or
        was merged back together from shards."""
        payload = {
            "platforms": self.platforms,
            "seed": self.seed,
            "shaders": [
                {
                    "name": s.name,
                    "family": s.family,
                    "loc": s.loc,
                    "arm_static_cycles": s.arm_static_cycles,
                    "original_times_ns": s.original_times_ns,
                    "variants": [
                        {
                            "variant_id": v.variant_id,
                            "flag_indices": v.flag_indices,
                            "text_hash": v.text_hash,
                            "times_ns": v.times_ns,
                            "static_ops": v.static_ops,
                            "registers": v.registers,
                        }
                        for v in s.variants
                    ],
                }
                for s in self.shaders
            ],
        }
        if self.shard is not None:
            payload["shard"] = {
                "index": self.shard.index,
                "count": self.shard.count,
                "case_indices": list(self.shard.case_indices),
                "corpus_digest": self.shard.corpus_digest,
            }
        return json.dumps(payload)

    @staticmethod
    def from_json(text: str) -> "StudyResult":
        """Rebuild a :class:`StudyResult` from :meth:`to_json` output."""
        payload = json.loads(text)
        shard = None
        if "shard" in payload:
            raw = payload["shard"]
            shard = ShardInfo(index=int(raw["index"]),
                              count=int(raw["count"]),
                              case_indices=[int(i)
                                            for i in raw["case_indices"]],
                              corpus_digest=str(raw.get("corpus_digest", "")))
        result = StudyResult(platforms=payload["platforms"],
                             seed=payload.get("seed", 0), shard=shard)
        for s in payload["shaders"]:
            shader = ShaderResult(
                name=s["name"], family=s["family"], loc=s["loc"],
                arm_static_cycles=s["arm_static_cycles"],
                original_times_ns=s["original_times_ns"],
            )
            for v in s["variants"]:
                shader.variants.append(VariantRecord(
                    variant_id=v["variant_id"],
                    flag_indices=v["flag_indices"],
                    text_hash=v["text_hash"],
                    times_ns=v["times_ns"],
                    static_ops={k: int(x) for k, x in v["static_ops"].items()},
                    registers={k: int(x) for k, x in v["registers"].items()},
                ))
            result.shaders.append(shader)
        return result


def merge_study_results(parts: Sequence[StudyResult],
                        require_complete: bool = True) -> StudyResult:
    """Reassemble shard results into one complete :class:`StudyResult`.

    Every part must carry :class:`ShardInfo` from the *same* sharded study
    (same platform list, same seed, same shard count), and together the
    parts must cover every global corpus index exactly once.  The merged
    result orders shaders by global index and drops the shard metadata, so
    its JSON is byte-identical to the equivalent unsharded run.

    ``require_complete=False`` relaxes only the coverage check — the
    graceful-degradation path the shard dispatcher takes when a shard
    exhausted its retries: the available shards merge into a *partial*
    result (global index order preserved, duplicates still rejected), and
    the accompanying missing-shard manifest is what keeps a partial run
    from masquerading as a complete one.
    """
    if not parts:
        raise ValueError("no shard results to merge")
    first = parts[0]
    for part in parts:
        if part.shard is None:
            raise ValueError("cannot merge: a result has no shard metadata "
                             "(was it produced with --shard?)")
        part.shard.validate(len(part.shaders))
        if part.platforms != first.platforms:
            raise ValueError(f"cannot merge: platform lists differ "
                             f"({part.platforms} vs {first.platforms})")
        if part.seed != first.seed:
            raise ValueError(f"cannot merge: seeds differ "
                             f"({part.seed} vs {first.seed})")
        if part.shard.count != first.shard.count:
            raise ValueError(f"cannot merge: shard counts differ "
                             f"({part.shard.count} vs {first.shard.count})")
        if part.shard.corpus_digest != first.shard.corpus_digest:
            raise ValueError(
                "cannot merge: shards were run over different corpora "
                f"(corpus digest {part.shard.corpus_digest[:12]}… vs "
                f"{first.shard.corpus_digest[:12]}…); check --synth-seed/"
                "--synth-count/--max-shaders were identical across shards")
    seen_shards = [part.shard.index for part in parts]
    if len(set(seen_shards)) != len(seen_shards):
        raise ValueError(f"cannot merge: duplicate shard indices {seen_shards}")

    by_global: Dict[int, ShaderResult] = {}
    for part in parts:
        for global_index, shader in zip(part.shard.case_indices, part.shaders):
            if global_index in by_global:
                raise ValueError(
                    f"cannot merge: case index {global_index} appears twice")
            by_global[global_index] = shader
    expected = set(range(len(by_global)))
    if require_complete and set(by_global) != expected:
        missing = sorted(expected - set(by_global))[:8]
        extra = sorted(set(by_global) - expected)[:8]
        raise ValueError(
            f"cannot merge: case indices do not cover 0..{len(by_global) - 1} "
            f"(missing {missing}, unexpected {extra}); are all "
            f"{first.shard.count} shards present?")
    return StudyResult(platforms=list(first.platforms),
                       shaders=[by_global[i] for i in sorted(by_global)],
                       seed=first.seed)
