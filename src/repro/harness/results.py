"""Result records for the exhaustive study, with JSON (de)serialisation so
benchmarks can cache a completed study run on disk."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.passes import OptimizationFlags


@dataclass
class ShaderCase:
    """One corpus shader instance."""

    name: str
    family: str
    source: str


@dataclass
class VariantRecord:
    """One distinct optimized text of one shader."""

    variant_id: int
    flag_indices: List[int]          # all combos (0..255) producing this text
    text_hash: str
    #: platform name -> measured mean ns
    times_ns: Dict[str, float] = field(default_factory=dict)
    static_ops: Dict[str, int] = field(default_factory=dict)
    registers: Dict[str, int] = field(default_factory=dict)


@dataclass
class ShaderResult:
    name: str
    family: str
    loc: int
    arm_static_cycles: float
    variants: List[VariantRecord] = field(default_factory=list)
    #: platform name -> measured mean ns of the *unaltered* shader
    original_times_ns: Dict[str, float] = field(default_factory=dict)

    @property
    def unique_variant_count(self) -> int:
        return len(self.variants)

    def variant_for_flags(self, flags: OptimizationFlags) -> VariantRecord:
        # Lazily built flag-index -> variant map; rebuilt whenever variants
        # have been appended since the last lookup.
        cached = self.__dict__.get("_variants_by_index")
        if cached is None or cached[0] != len(self.variants):
            mapping = {index: variant
                       for variant in self.variants
                       for index in variant.flag_indices}
            cached = (len(self.variants), mapping)
            self.__dict__["_variants_by_index"] = cached
        try:
            return cached[1][flags.index]
        except KeyError:
            raise KeyError(
                f"no variant for flags {flags} in shader {self.name}") from None

    def speedup_pct(self, platform: str, flags: OptimizationFlags) -> float:
        """Percentage speed-up of *flags* over the unaltered shader."""
        base = self.original_times_ns[platform]
        time = self.variant_for_flags(flags).times_ns[platform]
        return (base / time - 1.0) * 100.0

    def variant_speedup_pct(self, platform: str, variant: VariantRecord) -> float:
        base = self.original_times_ns[platform]
        return (base / variant.times_ns[platform] - 1.0) * 100.0

    def best_speedup_pct(self, platform: str) -> float:
        return max(self.variant_speedup_pct(platform, v) for v in self.variants)


@dataclass
class StudyResult:
    platforms: List[str]
    shaders: List[ShaderResult] = field(default_factory=list)
    seed: int = 0

    def shader(self, name: str) -> ShaderResult:
        for result in self.shaders:
            if result.name == name:
                return result
        raise KeyError(name)

    # ------------------------------------------------------------------
    # Serialisation (benchmark caching)
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "platforms": self.platforms,
            "seed": self.seed,
            "shaders": [
                {
                    "name": s.name,
                    "family": s.family,
                    "loc": s.loc,
                    "arm_static_cycles": s.arm_static_cycles,
                    "original_times_ns": s.original_times_ns,
                    "variants": [
                        {
                            "variant_id": v.variant_id,
                            "flag_indices": v.flag_indices,
                            "text_hash": v.text_hash,
                            "times_ns": v.times_ns,
                            "static_ops": v.static_ops,
                            "registers": v.registers,
                        }
                        for v in s.variants
                    ],
                }
                for s in self.shaders
            ],
        }
        return json.dumps(payload)

    @staticmethod
    def from_json(text: str) -> "StudyResult":
        payload = json.loads(text)
        result = StudyResult(platforms=payload["platforms"],
                             seed=payload.get("seed", 0))
        for s in payload["shaders"]:
            shader = ShaderResult(
                name=s["name"], family=s["family"], loc=s["loc"],
                arm_static_cycles=s["arm_static_cycles"],
                original_times_ns=s["original_times_ns"],
            )
            for v in s["variants"]:
                shader.variants.append(VariantRecord(
                    variant_id=v["variant_id"],
                    flag_indices=v["flag_indices"],
                    text_hash=v["text_hash"],
                    times_ns=v["times_ns"],
                    static_ops={k: int(x) for k, x in v["static_ops"].items()},
                    registers={k: int(x) for k, x in v["registers"].items()},
                ))
            result.shaders.append(shader)
        return result
