"""Isolated shader timing harness (paper Section IV-B) and the exhaustive
flag-space study (Section III-A) built on the simulated platforms."""

from repro.harness.environment import ShaderExecutionEnvironment
from repro.harness.protocol import Measurement, run_protocol
from repro.harness.study import StudyConfig, StudyResult, run_study
from repro.harness.uniforms import default_uniform_values
from repro.harness.vertex_gen import generate_vertex_shader

__all__ = [
    "ShaderExecutionEnvironment", "Measurement", "run_protocol",
    "StudyConfig", "StudyResult", "run_study",
    "default_uniform_values", "generate_vertex_shader",
]
