"""Auto-generation of matching vertex shaders (paper Section IV-B).

"Instead of using GFXBench's vertex shaders, we automatically generate
simplified ones based on the fragment shader's inputs" — a full-screen
triangle whose varyings cover every fragment input, with a uniform for depth
adjustment.  The generated source parses with this package's own frontend
(tests rely on that), and the harness charges its 3 vertex invocations per
draw as negligible against 250 000 fragment invocations.
"""

from __future__ import annotations

from typing import List

from repro.glsl import types as T
from repro.glsl.introspect import ShaderInterface


def generate_vertex_shader(interface: ShaderInterface) -> str:
    """GLSL vertex shader whose outputs match the fragment inputs."""
    lines: List[str] = [
        "in vec2 a_position;",
        "uniform float u_depth;",
        "out vec4 gl_Position;",
    ]
    body: List[str] = [
        "    vec2 ndc = a_position * 2.0 - 1.0;",
        "    gl_Position = vec4(ndc.x, ndc.y, u_depth, 1.0);",
    ]
    for var in interface.inputs:
        ty = var.ty
        lines.append(f"out {ty} {var.name};")
        if isinstance(ty, T.Vector) and ty.kind == T.ScalarKind.FLOAT:
            source = {2: "a_position",
                      3: "vec3(a_position, u_depth)",
                      4: "vec4(a_position, u_depth, 1.0)"}[ty.size]
            body.append(f"    {var.name} = {source};")
        elif isinstance(ty, T.Scalar) and ty.kind == T.ScalarKind.FLOAT:
            body.append(f"    {var.name} = a_position.x;")
        elif isinstance(ty, T.Scalar):
            body.append(f"    {var.name} = {_zero_of(ty)};")
        else:
            body.append(f"    {var.name} = {_zero_of(ty)};")
    out = lines + ["", "void main()", "{"] + body + ["}"]
    return "\n".join(out) + "\n"


def _zero_of(ty: T.GLSLType) -> str:
    if isinstance(ty, T.Scalar):
        return {"float": "0.0", "int": "0", "uint": "0",
                "bool": "false"}[ty.kind.value]
    if isinstance(ty, T.Vector):
        inner = {"float": "0.0", "int": "0", "uint": "0",
                 "bool": "false"}[ty.kind.value]
        return f"{ty}({inner})"
    return f"{ty}(0.0)"
