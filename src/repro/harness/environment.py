"""Shader execution environment: one shader variant on one platform.

This is the simulated counterpart of the paper's custom framework that
"repeatedly rendered full-screen quads using the specified fragment shader,
and timed the execution of each draw-call":

1. the platform's driver JIT compiles the (possibly offline-optimized) GLSL;
2. a matching vertex shader is generated from the fragment interface;
3. uniforms/textures get introspected defaults;
4. the reference interpreter profiles dynamic block execution over sample
   fragments (branches may depend on fragment position);
5. the platform cost model turns the compiled IR + profile into a true draw
   time, and the timer model + protocol produce the reported measurement.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import HarnessError
from repro.gpu.cost import CostBreakdown, draw_time_ns, estimate_kernel
from repro.gpu.platform import Platform
from repro.harness.protocol import Measurement, run_protocol
from repro.harness.uniforms import (
    default_textures, default_uniform_values, fragment_inputs,
)
from repro.harness.vertex_gen import generate_vertex_shader
from repro.ir.interp import Interpreter
from repro.ir.module import Module

#: Sample fragment positions for dynamic profiling (centre + corners-ish).
SAMPLE_FRAGMENTS: Tuple[Tuple[float, float], ...] = (
    (0.5, 0.5), (0.2, 0.2), (0.8, 0.2), (0.2, 0.8), (0.8, 0.8),
)


@dataclass
class ExecutionReport:
    """Everything the environment learned about one variant.

    ``vertex_shader`` is generated lazily from the fragment interface: the
    paper's harness needs a matching vertex stage to render at all, but
    every measurement consumer here discards it, so the hot measurement
    loop should not pay for string generation per run.
    """

    cost: CostBreakdown
    true_ns: float
    measurement: Measurement
    #: fragment-shader interface the lazy vertex shader is generated from.
    interface: object = None
    _vertex_shader: Optional[str] = field(default=None, repr=False)

    @property
    def vertex_shader(self) -> str:
        """The matching vertex stage (generated on first access)."""
        if self._vertex_shader is None:
            if self.interface is None:
                raise HarnessError("report has no interface to generate a "
                                   "vertex shader from")
            self._vertex_shader = generate_vertex_shader(self.interface)
        return self._vertex_shader


class ShaderExecutionEnvironment:
    """Compile-and-time one fragment shader variant on one platform."""

    def __init__(self, platform: Platform):
        self.platform = platform

    def compile(self, source: str) -> Module:
        return self.platform.jit.compile(source)

    def profile(self, module: Module) -> Dict[str, float]:
        """Average dynamic block-visit counts over the sample fragments."""
        interface = module.interface
        uniforms = default_uniform_values(interface)
        textures = default_textures(interface)
        totals: Dict[str, float] = {}
        for position in SAMPLE_FRAGMENTS:
            interp = Interpreter(module, uniforms=uniforms,
                                 inputs=fragment_inputs(interface, position),
                                 textures=textures)
            interp.run()
            for name, visits in interp.stats.block_visits.items():
                totals[name] = totals.get(name, 0.0) + visits
        return {name: count / len(SAMPLE_FRAGMENTS)
                for name, count in totals.items()}

    def run(self, source: str, seed: int = 0) -> ExecutionReport:
        """Full pipeline: JIT, profile, cost, measure."""
        try:
            module = self.compile(source)
        except Exception as exc:
            raise HarnessError(
                f"{self.platform.name} driver failed to compile shader: {exc}"
            ) from exc
        profile = self.profile(module)
        cost = estimate_kernel(module.function, self.platform.spec, profile)
        true_ns = draw_time_ns(cost, self.platform.spec,
                               self.platform.fragments_per_draw)
        # A digest, not hash(): str hashing is salted per process, which
        # would make measurements (and any persisted result cache) vary
        # from run to run.
        platform_digest = int.from_bytes(
            hashlib.sha256(self.platform.name.encode()).digest()[:8], "big")
        rng = random.Random((seed * 1_000_003) ^ platform_digest)
        measurement = run_protocol(true_ns, self.platform.timer, rng,
                                   draws_per_frame=self.platform.draws_per_frame)
        return ExecutionReport(cost=cost, true_ns=true_ns,
                               measurement=measurement,
                               interface=module.interface)
