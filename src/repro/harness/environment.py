"""Shader execution environment: one shader variant on one platform.

This is the simulated counterpart of the paper's custom framework that
"repeatedly rendered full-screen quads using the specified fragment shader,
and timed the execution of each draw-call":

1. the platform's driver JIT compiles the (possibly offline-optimized) GLSL;
2. a matching vertex shader is generated from the fragment interface;
3. uniforms/textures get introspected defaults;
4. the reference interpreter profiles dynamic block execution over sample
   fragments (branches may depend on fragment position);
5. the platform cost model turns the compiled IR + profile into a true draw
   time, and the timer model + protocol produce the reported measurement.

Steps 1–4 are pure functions of (source, platform) — only step 5 consumes
the measurement seed — so the batched measurement mode (the default)
prepares them once per (source, platform) and amortizes the work across
every measurement seed of the unit: :meth:`ShaderExecutionEnvironment.run_many`
evaluates all of a unit's seeds off one compile, one lane-batched
interpreter profile (all sample fragments in a single pass over the
instruction list — :mod:`repro.ir.interp_batch`), and one cost estimate.
``REPRO_MEASURE=scalar`` restores the reference path — a full scalar
pipeline per seed — for A/B differential testing, mirroring
``REPRO_COMPILE=naive``.  Both modes produce bit-identical reports.
"""

from __future__ import annotations

import hashlib
import os
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import HarnessError
from repro.gpu.cost import CostBreakdown, draw_time_ns, estimate_kernel
from repro.gpu.platform import Platform
from repro.harness.protocol import Measurement, run_protocol
from repro.harness.uniforms import (
    batch_fragment_inputs, default_textures, default_uniform_values,
    fragment_inputs,
)
from repro.harness.vertex_gen import generate_vertex_shader
from repro.ir.interp import Interpreter
from repro.ir.interp_batch import BatchedInterpreter
from repro.ir.module import Module

#: Sample fragment positions for dynamic profiling (centre + corners-ish).
SAMPLE_FRAGMENTS: Tuple[Tuple[float, float], ...] = (
    (0.5, 0.5), (0.2, 0.2), (0.8, 0.2), (0.2, 0.8), (0.8, 0.8),
)

#: Environment switch for the measurement execution strategy: ``batched``
#: (default — lane-batched interpreter, per-unit preparation shared across
#: seeds, hoisted timer sampling) or ``scalar`` (the reference
#: one-instruction-at-a-time walk per fragment per seed, kept for A/B
#: differential testing).  Mirrors ``REPRO_COMPILE``.
MEASURE_MODE_ENV = "REPRO_MEASURE"
_MEASURE_MODES = ("batched", "scalar")


def measure_mode(explicit: Optional[str] = None) -> str:
    """Resolve the measurement mode: explicit arg > env > batched."""
    mode = explicit or os.environ.get(MEASURE_MODE_ENV) or "batched"
    if mode not in _MEASURE_MODES:
        raise ValueError(
            f"unknown measure mode {mode!r}; expected one of {_MEASURE_MODES}")
    return mode


@dataclass
class ExecutionReport:
    """Everything the environment learned about one variant.

    ``vertex_shader`` is generated lazily from the fragment interface: the
    paper's harness needs a matching vertex stage to render at all, but
    every measurement consumer here discards it, so the hot measurement
    loop should not pay for string generation per run.
    """

    cost: CostBreakdown
    true_ns: float
    measurement: Measurement
    #: fragment-shader interface the lazy vertex shader is generated from.
    interface: object = None
    _vertex_shader: Optional[str] = field(default=None, repr=False)

    @property
    def vertex_shader(self) -> str:
        """The matching vertex stage (generated on first access)."""
        if self._vertex_shader is None:
            if self.interface is None:
                raise HarnessError("report has no interface to generate a "
                                   "vertex shader from")
            self._vertex_shader = generate_vertex_shader(self.interface)
        return self._vertex_shader


@dataclass(frozen=True)
class PreparedMeasurement:
    """The seed-independent part of a (source, platform) measurement unit:
    compiled module, dynamic profile, cost estimate, and true draw time.
    Each measurement seed only adds one protocol run on top."""

    module: Module
    profile: Dict[str, float]
    cost: CostBreakdown
    true_ns: float


class ShaderExecutionEnvironment:
    """Compile-and-time one fragment shader variant on one platform."""

    def __init__(self, platform: Platform):
        self.platform = platform

    def compile(self, source: str) -> Module:
        return self.platform.jit.compile(source)

    def profile(self, module: Module, mode: Optional[str] = None) -> Dict[str, float]:
        """Average dynamic block-visit counts over the sample fragments.

        Batched mode executes all sample fragments as lanes of a single
        :class:`~repro.ir.interp_batch.BatchedInterpreter` pass; the
        per-lane visit dicts (same keys, same insertion order, same
        counts) are aggregated in lane order exactly as the scalar loop
        aggregates its per-fragment runs, so the resulting profile — and
        every float that the cost model derives from it — is identical.
        """
        interface = module.interface
        uniforms = default_uniform_values(interface)
        textures = default_textures(interface)
        totals: Dict[str, float] = {}
        if measure_mode(mode) == "batched":
            batch = BatchedInterpreter(
                module, uniforms=uniforms,
                inputs=batch_fragment_inputs(interface, SAMPLE_FRAGMENTS),
                textures=textures)
            batch.run()
            lane_visits = [stats.block_visits for stats in batch.stats]
        else:
            lane_visits = []
            for position in SAMPLE_FRAGMENTS:
                interp = Interpreter(module, uniforms=uniforms,
                                     inputs=fragment_inputs(interface, position),
                                     textures=textures)
                interp.run()
                lane_visits.append(interp.stats.block_visits)
        for visits in lane_visits:
            for name, count in visits.items():
                totals[name] = totals.get(name, 0.0) + count
        return {name: count / len(SAMPLE_FRAGMENTS)
                for name, count in totals.items()}

    def prepare(self, source: str, mode: Optional[str] = None) -> PreparedMeasurement:
        """JIT, profile, and cost *source* once — everything a measurement
        needs except the seed-dependent timer protocol.

        Batched mode reads the compiled module through the vendor JIT's
        compiled-module memo, so repeated preparations of the same
        (source, platform) — e.g. a seed sweep — compile once.
        """
        mode = measure_mode(mode)
        try:
            if mode == "batched":
                module = self.platform.jit.compile_cached(source)
            else:
                module = self.compile(source)
        except Exception as exc:
            raise HarnessError(
                f"{self.platform.name} driver failed to compile shader: {exc}"
            ) from exc
        profile = self.profile(module, mode=mode)
        cost = estimate_kernel(module.function, self.platform.spec, profile)
        true_ns = draw_time_ns(cost, self.platform.spec,
                               self.platform.fragments_per_draw)
        return PreparedMeasurement(module=module, profile=profile, cost=cost,
                                   true_ns=true_ns)

    def _measure_prepared(self, prepared: PreparedMeasurement, seed: int,
                          batched: bool) -> ExecutionReport:
        # A digest, not hash(): str hashing is salted per process, which
        # would make measurements (and any persisted result cache) vary
        # from run to run.
        platform_digest = int.from_bytes(
            hashlib.sha256(self.platform.name.encode()).digest()[:8], "big")
        rng = random.Random((seed * 1_000_003) ^ platform_digest)
        measurement = run_protocol(prepared.true_ns, self.platform.timer, rng,
                                   draws_per_frame=self.platform.draws_per_frame,
                                   batched=batched)
        return ExecutionReport(cost=prepared.cost, true_ns=prepared.true_ns,
                               measurement=measurement,
                               interface=prepared.module.interface)

    def run(self, source: str, seed: int = 0,
            mode: Optional[str] = None) -> ExecutionReport:
        """Full pipeline: JIT, profile, cost, measure."""
        mode = measure_mode(mode)
        prepared = self.prepare(source, mode=mode)
        return self._measure_prepared(prepared, seed,
                                      batched=(mode == "batched"))

    def run_many(self, source: str, seeds: Sequence[int],
                 mode: Optional[str] = None) -> List[ExecutionReport]:
        """Measure *source* under every seed in one pass.

        Bit-identical to ``[self.run(source, s) for s in seeds]`` in either
        mode; batched mode (the default) pays the seed-independent work —
        driver JIT, lane-batched interpreter profile, cost model — once for
        the whole seed batch instead of once per seed.
        """
        mode = measure_mode(mode)
        if mode == "scalar":
            return [self.run(source, seed, mode=mode) for seed in seeds]
        prepared = self.prepare(source, mode=mode)
        return [self._measure_prepared(prepared, seed, batched=True)
                for seed in seeds]
