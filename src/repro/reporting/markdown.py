"""Markdown rendering of figure specs.

Tables become GitHub pipe tables; distribution figures embed their
fixed-width text rendering in fenced code blocks so ``report.md`` stays a
single self-contained file that renders everywhere.
"""

from __future__ import annotations

from typing import List

from repro.reporting.spec import Spec, TableSpec
from repro.reporting.tables import fmt_cell
from repro.reporting.textfmt import render_spec_text


def _escape_cell(text: str) -> str:
    return text.replace("|", "\\|")


def render_spec_markdown(spec: Spec) -> str:
    """Render one figure spec as GitHub-flavoured Markdown."""
    if isinstance(spec, TableSpec):
        out: List[str] = []
        if spec.caption:
            out.append(f"**{spec.caption}**")
            out.append("")
        out.append("| " + " | ".join(_escape_cell(h) for h in spec.headers)
                   + " |")
        out.append("|" + "|".join(" --- " for _ in spec.headers) + "|")
        for row in spec.rows:
            out.append("| " + " | ".join(_escape_cell(fmt_cell(cell))
                                         for cell in row) + " |")
        return "\n".join(out)
    text = render_spec_text(spec)
    caption = ""
    if getattr(spec, "caption", ""):
        # The text renderers print the caption as their first line; lift it
        # out of the fence so it renders as Markdown.
        first, _, rest = text.partition("\n")
        caption, text = f"**{first}**\n\n", rest
    return f"{caption}```\n{text}\n```"
