"""Inline-SVG rendering of figure specs for the HTML report.

Pure string generation — no third-party plotting dependency — with fixed
number formatting so the emitted markup is byte-identical across runs.
Marks follow the repo's chart conventions: thin recessive axes, direct
labels (identity never rides on color alone), native ``<title>`` hover
tooltips, and CSS-class-based colors (``vz-*``) so the page's style block
controls light/dark in one place.  All distribution geometry reuses the
same helpers as the text renderers (:func:`violin_summary`,
:func:`histogram_bins`).
"""

from __future__ import annotations

import html
from typing import List

from repro.reporting.histogram import histogram_bins
from repro.reporting.spec import (
    BarSpec, HistogramSpec, ScatterSpec, Spec, TableSpec, ViolinSpec,
)
from repro.reporting.tables import fmt_cell
from repro.reporting.violin import violin_summary

#: Stylesheet the HTML report embeds once.  Palette: documented categorical
#: slot 1 (blue) for single-series marks and the blue/red diverging pair for
#: signed values, stepped separately for light and dark surfaces.
REPORT_CSS = """\
:root { color-scheme: light dark; }
body { margin: 2rem auto; max-width: 60rem; padding: 0 1rem;
       font: 15px/1.5 system-ui, sans-serif;
       background: #fcfcfb; color: #0b0b0b; }
a { color: #256abf; }
h1, h2 { line-height: 1.2; }
h2 { margin-top: 2.5rem; }
.vz-ref { color: #52514e; font-size: 0.9em; }
figure { margin: 1rem 0; }
figcaption { color: #52514e; font-size: 0.9em; margin-bottom: 0.3rem; }
table { border-collapse: collapse; margin: 0.5rem 0; }
th, td { border: 1px solid #e3e2de; padding: 0.25rem 0.6rem;
         text-align: left; font-variant-numeric: tabular-nums; }
th { background: #f0efec; }
svg { display: block; }
svg text { font: 11px system-ui, sans-serif; fill: #0b0b0b; }
svg text.vz-lbl { fill: #52514e; }
.vz-axis { stroke: #d5d4d0; stroke-width: 1; }
.vz-s1 { fill: #2a78d6; }
.vz-s1-line { stroke: #2a78d6; stroke-width: 2; fill: none; }
.vz-pos { fill: #2a78d6; }
.vz-neg { fill: #e34948; }
@media (prefers-color-scheme: dark) {
  body { background: #1a1a19; color: #ffffff; }
  a { color: #86b6ef; }
  .vz-ref, figcaption { color: #c3c2b7; }
  th, td { border-color: #383835; }
  th { background: #262624; }
  svg text { fill: #ffffff; }
  svg text.vz-lbl { fill: #c3c2b7; }
  .vz-axis { stroke: #44443f; }
  .vz-s1, .vz-pos { fill: #3987e5; }
  .vz-s1-line { stroke: #3987e5; }
  .vz-neg { fill: #e66767; }
}
"""

_WIDTH = 640
_LEFT = 150          # label gutter
_RIGHT = 20
_RIGHT_LABELED = 70  # wider margin where value labels sit right of the marks


def _esc(text: str) -> str:
    return html.escape(str(text), quote=True)


def _num(value: float) -> str:
    """Fixed-precision coordinate formatting (determinism + small files)."""
    return f"{value:.2f}".rstrip("0").rstrip(".")


def _svg_open(height: int) -> str:
    return (f'<svg viewBox="0 0 {_WIDTH} {height}" width="{_WIDTH}" '
            f'height="{height}" role="img">')


def _caption(spec: Spec) -> str:
    caption = getattr(spec, "caption", "")
    return f"<figcaption>{_esc(caption)}</figcaption>" if caption else ""


def _scale(lo: float, hi: float, right: int = _RIGHT):
    span = (hi - lo) or 1.0
    plot = _WIDTH - _LEFT - right

    def to_x(value: float) -> float:
        return _LEFT + (value - lo) * plot / span

    return to_x


def render_spec_svg(spec: Spec) -> str:
    """One spec -> one HTML ``<figure>`` (SVG chart or ``<table>``)."""
    if isinstance(spec, TableSpec):
        return _table_html(spec)
    if isinstance(spec, ViolinSpec):
        return _violin_svg(spec)
    if isinstance(spec, HistogramSpec):
        return _histogram_svg(spec)
    if isinstance(spec, BarSpec):
        return _bars_svg(spec)
    if isinstance(spec, ScatterSpec):
        return _scatter_svg(spec)
    raise TypeError(f"unknown spec type {type(spec).__name__}")


def _table_html(spec: TableSpec) -> str:
    parts: List[str] = ["<figure>", _caption(spec), "<table>", "<thead><tr>"]
    parts.extend(f"<th>{_esc(h)}</th>" for h in spec.headers)
    parts.append("</tr></thead><tbody>")
    for row in spec.rows:
        parts.append("<tr>" + "".join(
            f"<td>{_esc(fmt_cell(cell))}</td>" for cell in row) + "</tr>")
    parts.append("</tbody></table></figure>")
    return "".join(part for part in parts if part)


def _violin_svg(spec: ViolinSpec) -> str:
    """Min--max whisker, p25-p75 box, median tick, mean dot — one row per
    series, directly labeled."""
    row_h, top, bottom = 26, 18, 24
    height = top + row_h * len(spec.series) + bottom
    summaries = [violin_summary(series.values) for series in spec.series]
    lo = min((s["min"] for s in summaries), default=0.0)
    hi = max((s["max"] for s in summaries), default=1.0)
    lo, hi = min(lo, 0.0), max(hi, 0.0)
    to_x = _scale(lo, hi, right=_RIGHT_LABELED)
    out = ["<figure>", _caption(spec), _svg_open(height)]
    zero = to_x(0.0)
    out.append(f'<line class="vz-axis" x1="{_num(zero)}" y1="{top - 8}" '
               f'x2="{_num(zero)}" y2="{height - bottom + 4}"/>')
    for index, (series, summary) in enumerate(zip(spec.series, summaries)):
        cy = top + row_h * index + row_h / 2
        tip = (f"{series.name}: mean {summary['mean']:+.2f}{spec.unit} "
               f"median {summary['median']:+.2f}{spec.unit} "
               f"[{summary['min']:+.2f}, {summary['max']:+.2f}]")
        out.append("<g>")
        out.append(f"<title>{_esc(tip)}</title>")
        out.append(f'<text class="vz-lbl" x="{_LEFT - 8}" '
                   f'y="{_num(cy + 4)}" text-anchor="end">'
                   f"{_esc(series.name)}</text>")
        out.append(f'<line class="vz-axis" x1="{_num(to_x(summary["min"]))}" '
                   f'y1="{_num(cy)}" x2="{_num(to_x(summary["max"]))}" '
                   f'y2="{_num(cy)}"/>')
        box_l, box_r = to_x(summary["p25"]), to_x(summary["p75"])
        out.append(f'<rect class="vz-s1" x="{_num(box_l)}" '
                   f'y="{_num(cy - 6)}" '
                   f'width="{_num(max(box_r - box_l, 1.0))}" height="12" '
                   f'rx="2" opacity="0.45"/>')
        med = to_x(summary["median"])
        out.append(f'<rect class="vz-s1" x="{_num(med - 1.5)}" '
                   f'y="{_num(cy - 8)}" width="3" height="16" rx="1.5"/>')
        out.append(f'<circle class="vz-s1" cx="{_num(to_x(summary["mean"]))}" '
                   f'cy="{_num(cy)}" r="3.5"/>')
        out.append(f'<text x="{_num(to_x(summary["max"]) + 6)}" '
                   f'y="{_num(cy + 4)}">'
                   f"{summary['mean']:+.1f}{_esc(spec.unit)}</text>")
        out.append("</g>")
    out.append(f'<text class="vz-lbl" x="{_LEFT}" y="{height - 6}">'
               f"{lo:+.1f}{_esc(spec.unit)}</text>")
    out.append(f'<text class="vz-lbl" x="{_WIDTH - _RIGHT}" '
               f'y="{height - 6}" text-anchor="end">'
               f"{hi:+.1f}{_esc(spec.unit)}</text>")
    out.append("</svg></figure>")
    return "".join(part for part in out if part)


def _histogram_svg(spec: HistogramSpec) -> str:
    binned = histogram_bins(spec.values, spec.bins)
    height, top, bottom, left = 220, 12, 34, 40
    out = ["<figure>", _caption(spec), _svg_open(height)]
    if binned:
        peak = max(count for _, _, count in binned) or 1
        plot_w = _WIDTH - left - _RIGHT
        plot_h = height - top - bottom
        bar_w = plot_w / len(binned)
        out.append(f'<line class="vz-axis" x1="{left}" '
                   f'y1="{height - bottom}" x2="{_WIDTH - _RIGHT}" '
                   f'y2="{height - bottom}"/>')
        for index, (lo, hi, count) in enumerate(binned):
            bar_h = plot_h * count / peak
            x = left + bar_w * index
            y = height - bottom - bar_h
            out.append("<g>")
            out.append(f"<title>{_esc(f'[{lo:.1f}, {hi:.1f}): {count}')}"
                       "</title>")
            out.append(f'<rect class="vz-s1" x="{_num(x + 1)}" '
                       f'y="{_num(y)}" width="{_num(max(bar_w - 2, 1.0))}" '
                       f'height="{_num(max(bar_h, 1.0))}" rx="2"/>')
            if count:
                out.append(f'<text x="{_num(x + bar_w / 2)}" '
                           f'y="{_num(y - 3)}" text-anchor="middle">'
                           f"{count}</text>")
            out.append("</g>")
        first_lo = binned[0][0]
        last_hi = binned[-1][1]
        out.append(f'<text class="vz-lbl" x="{left}" y="{height - 18}">'
                   f"{first_lo:.1f}</text>")
        out.append(f'<text class="vz-lbl" x="{_WIDTH - _RIGHT}" '
                   f'y="{height - 18}" text-anchor="end">{last_hi:.1f}</text>')
    if spec.xlabel:
        out.append(f'<text class="vz-lbl" x="{_num(_WIDTH / 2)}" '
                   f'y="{height - 4}" text-anchor="middle">'
                   f"{_esc(spec.xlabel)}</text>")
    out.append("</svg></figure>")
    return "".join(part for part in out if part)


def _bars_svg(spec: BarSpec) -> str:
    row_h, top, bottom = 18, 10, 24
    height = top + row_h * len(spec.values) + bottom
    lo = min(min(spec.values, default=0.0), 0.0)
    hi = max(max(spec.values, default=0.0), 0.0)
    to_x = _scale(lo, hi, right=_RIGHT_LABELED)
    zero = to_x(0.0)
    out = ["<figure>", _caption(spec), _svg_open(height)]
    out.append(f'<line class="vz-axis" x1="{_num(zero)}" y1="{top - 4}" '
               f'x2="{_num(zero)}" y2="{height - bottom + 4}"/>')
    for index, value in enumerate(spec.values):
        label = (spec.labels[index] if index < len(spec.labels)
                 else str(index))
        cy = top + row_h * index + row_h / 2
        x = to_x(value)
        klass = "vz-neg" if value < 0 else "vz-pos"
        out.append("<g>")
        out.append(f"<title>{_esc(f'{label}: {value:+.2f}{spec.unit}')}"
                   "</title>")
        out.append(f'<text class="vz-lbl" x="{_LEFT - 8}" '
                   f'y="{_num(cy + 4)}" text-anchor="end">'
                   f"{_esc(label)}</text>")
        out.append(f'<rect class="{klass}" x="{_num(min(x, zero))}" '
                   f'y="{_num(cy - 5)}" '
                   f'width="{_num(max(abs(x - zero), 1.0))}" height="10" '
                   f'rx="2"/>')
        anchor = "start" if value >= 0 else "end"
        dx = 5 if value >= 0 else -5
        out.append(f'<text x="{_num(x + dx)}" y="{_num(cy + 4)}" '
                   f'text-anchor="{anchor}">{value:+.1f}</text>')
        out.append("</g>")
    out.append("</svg></figure>")
    return "".join(part for part in out if part)


def _scatter_svg(spec: ScatterSpec) -> str:
    height, top, bottom, left = 260, 14, 40, 60
    points = [(x, y) for series in spec.series for x, y in series.points]
    out = ["<figure>", _caption(spec), _svg_open(height)]
    if points:
        xs = [x for x, _ in points]
        ys = [y for _, y in points]
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(min(ys), 0.0), max(max(ys), 0.0)
        x_span = (x_hi - x_lo) or 1.0
        y_span = (y_hi - y_lo) or 1.0
        plot_w = _WIDTH - left - _RIGHT
        plot_h = height - top - bottom

        def to_xy(x: float, y: float):
            return (left + (x - x_lo) * plot_w / x_span,
                    top + plot_h - (y - y_lo) * plot_h / y_span)

        _, zero_y = to_xy(x_lo, 0.0)
        out.append(f'<line class="vz-axis" x1="{left}" '
                   f'y1="{_num(zero_y)}" x2="{_WIDTH - _RIGHT}" '
                   f'y2="{_num(zero_y)}"/>')
        out.append(f'<line class="vz-axis" x1="{left}" y1="{top}" '
                   f'x2="{left}" y2="{height - bottom + 4}"/>')
        for series in spec.series:
            for x, y in series.points:
                px, py = to_xy(x, y)
                out.append("<g>")
                out.append(
                    f"<title>{_esc(f'{series.name}: ({x:g}, {y:+.2f})')}"
                    "</title>")
                out.append(f'<circle class="vz-s1" cx="{_num(px)}" '
                           f'cy="{_num(py)}" r="4" opacity="0.8"/>')
                out.append("</g>")
        out.append(f'<text class="vz-lbl" x="{left}" y="{height - 22}">'
                   f"{x_lo:g}</text>")
        out.append(f'<text class="vz-lbl" x="{_WIDTH - _RIGHT}" '
                   f'y="{height - 22}" text-anchor="end">{x_hi:g}</text>')
        out.append(f'<text class="vz-lbl" x="{left - 6}" '
                   f'y="{_num(top + 8)}" text-anchor="end">'
                   f"{y_hi:+.1f}</text>")
        out.append(f'<text class="vz-lbl" x="{left - 6}" '
                   f'y="{_num(height - bottom)}" text-anchor="end">'
                   f"{y_lo:+.1f}</text>")
    if spec.xlabel:
        out.append(f'<text class="vz-lbl" x="{_num(_WIDTH / 2)}" '
                   f'y="{height - 6}" text-anchor="middle">'
                   f"{_esc(spec.xlabel)}</text>")
    if spec.ylabel:
        out.append(f'<text class="vz-lbl" x="{left}" y="{top - 2}">'
                   f"{_esc(spec.ylabel)}</text>")
    out.append("</svg></figure>")
    return "".join(part for part in out if part)
