"""Minimal fixed-width table renderer for benchmark and report output."""

from __future__ import annotations

from typing import List, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render rows as a fixed-width text table (the CLI's output format)."""
    cells = [[str(h) for h in headers]] + [[fmt_cell(c) for c in row] for row in rows]
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]

    def line(row: Sequence[str]) -> str:
        return " | ".join(text.ljust(width) for text, width in zip(row, widths))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(cells[0]))
    out.append("-+-".join("-" * w for w in widths))
    for row in cells[1:]:
        out.append(line(row))
    return "\n".join(out)


def fmt_cell(value: object) -> str:
    """One table cell.  Floats always carry an explicit sign — speed-up
    columns mix magnitudes, and dropping the ``+`` above 1000 made them
    inconsistent — with large values compacted to 4 significant digits."""
    if isinstance(value, float):
        # Branch on the rounded value so 999.996 doesn't render as
        # "+1000.00" while 1000.1 renders "+1000".
        if abs(round(value, 2)) < 1000:
            return f"{value:+.2f}"
        return f"{value:+.4g}"
    return str(value)


# Backwards-compatible alias (pre-report-pipeline name).
_fmt = fmt_cell
