"""Minimal fixed-width table renderer for benchmark output."""

from __future__ import annotations

from typing import List, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]

    def line(row: Sequence[str]) -> str:
        return " | ".join(text.ljust(width) for text, width in zip(row, widths))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(cells[0]))
    out.append("-+-".join("-" * w for w in widths))
    for row in cells[1:]:
        out.append(line(row))
    return "\n".join(out)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:+.2f}" if abs(value) < 1000 else f"{value:.3g}"
    return str(value)
