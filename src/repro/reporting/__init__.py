"""Rendering of study results: tables, histograms, violins, figure specs,
and the paper-artifact report pipeline (text / Markdown / HTML+SVG)."""

from repro.reporting.tables import fmt_cell, render_table
from repro.reporting.histogram import (
    histogram_bins, render_bars, render_histogram,
)
from repro.reporting.violin import render_violin_table, violin_summary
from repro.reporting.spec import (
    BarSpec, HistogramSpec, ScatterSeries, ScatterSpec, Series, Spec,
    TableSpec, ViolinSpec,
)
from repro.reporting.textfmt import render_spec_text
from repro.reporting.markdown import render_spec_markdown
from repro.reporting.svg import render_spec_svg
from repro.reporting.report import (
    Artifact, Report, ReportBuilder, ReportSection, all_artifacts,
    artifact_names, get_artifact, register_artifact,
)

__all__ = [
    "render_table", "fmt_cell",
    "render_histogram", "render_bars", "histogram_bins",
    "violin_summary", "render_violin_table",
    "Spec", "TableSpec", "Series", "ViolinSpec", "HistogramSpec", "BarSpec",
    "ScatterSeries", "ScatterSpec",
    "render_spec_text", "render_spec_markdown", "render_spec_svg",
    "Artifact", "Report", "ReportBuilder", "ReportSection",
    "register_artifact", "get_artifact", "all_artifacts", "artifact_names",
]
