"""Plain-text rendering of study results (tables, histograms, violins)."""

from repro.reporting.tables import render_table
from repro.reporting.histogram import render_histogram, render_bars
from repro.reporting.violin import violin_summary, render_violin_table

__all__ = ["render_table", "render_histogram", "render_bars",
           "violin_summary", "render_violin_table"]
