"""Declarative figure specifications.

Every paper artifact computes one of these small immutable descriptions
instead of printing directly; the renderers in :mod:`repro.reporting.textfmt`,
:mod:`repro.reporting.markdown` and :mod:`repro.reporting.svg` turn the same
spec into fixed-width text, Markdown, or inline SVG.  Keeping the spec a pure
value (tuples all the way down) is what makes report rendering byte-identical
across runs and ``--jobs`` settings: the only inputs are the study numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple, Union


def _floats(values: Sequence[float]) -> Tuple[float, ...]:
    return tuple(float(v) for v in values)


@dataclass(frozen=True)
class TableSpec:
    """A headed table (Table I, Fig. 5 rows, strategy comparisons)."""

    headers: Tuple[str, ...]
    rows: Tuple[Tuple[object, ...], ...]
    caption: str = ""

    @staticmethod
    def make(headers: Sequence[str], rows: Sequence[Sequence[object]],
             caption: str = "") -> "TableSpec":
        return TableSpec(headers=tuple(str(h) for h in headers),
                         rows=tuple(tuple(row) for row in rows),
                         caption=caption)


@dataclass(frozen=True)
class Series:
    """One named value series inside a distribution figure."""

    name: str
    values: Tuple[float, ...]

    @staticmethod
    def make(name: str, values: Sequence[float]) -> "Series":
        return Series(name=name, values=_floats(values))


@dataclass(frozen=True)
class ViolinSpec:
    """Distribution summaries, one row per series (the paper's violins)."""

    series: Tuple[Series, ...]
    caption: str = ""
    unit: str = "%"


@dataclass(frozen=True)
class HistogramSpec:
    """Binned counts (Fig. 4 size/uniqueness distributions)."""

    values: Tuple[float, ...]
    bins: int = 12
    caption: str = ""
    xlabel: str = ""

    @staticmethod
    def make(values: Sequence[float], bins: int = 12, caption: str = "",
             xlabel: str = "") -> "HistogramSpec":
        return HistogramSpec(values=_floats(values), bins=bins,
                             caption=caption, xlabel=xlabel)


@dataclass(frozen=True)
class BarSpec:
    """One labeled signed bar per value (sorted per-shader plots)."""

    labels: Tuple[str, ...]
    values: Tuple[float, ...]
    caption: str = ""
    unit: str = "%"

    @staticmethod
    def make(labels: Sequence[str], values: Sequence[float],
             caption: str = "", unit: str = "%") -> "BarSpec":
        return BarSpec(labels=tuple(str(l) for l in labels),
                       values=_floats(values), caption=caption, unit=unit)


@dataclass(frozen=True)
class ScatterSeries:
    """One named point cloud."""

    name: str
    points: Tuple[Tuple[float, float], ...] = field(default_factory=tuple)

    @staticmethod
    def make(name: str,
             points: Sequence[Tuple[float, float]]) -> "ScatterSeries":
        return ScatterSeries(
            name=name,
            points=tuple((float(x), float(y)) for x, y in points))


@dataclass(frozen=True)
class ScatterSpec:
    """An x/y point plot (LoC vs speed-up)."""

    series: Tuple[ScatterSeries, ...]
    xlabel: str = ""
    ylabel: str = ""
    caption: str = ""


Spec = Union[TableSpec, ViolinSpec, HistogramSpec, BarSpec, ScatterSpec]

__all__ = ["TableSpec", "Series", "ViolinSpec", "HistogramSpec", "BarSpec",
           "ScatterSeries", "ScatterSpec", "Spec"]
