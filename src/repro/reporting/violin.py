"""Violin-style summaries for Fig. 9 (per-flag speed-up distributions)."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.reporting.tables import render_table


def violin_summary(values: Sequence[float]) -> Dict[str, float]:
    """Mean / quartiles / extremes — what the paper's violins communicate."""
    if not values:
        return {"mean": 0.0, "min": 0.0, "p25": 0.0, "median": 0.0,
                "p75": 0.0, "max": 0.0}
    data = sorted(values)
    n = len(data)

    def pct(p: float) -> float:
        return data[min(int(p * n), n - 1)]

    return {
        "mean": sum(data) / n,
        "min": data[0],
        "p25": pct(0.25),
        "median": pct(0.50),
        "p75": pct(0.75),
        "max": data[-1],
    }


def render_violin_table(named_values: Dict[str, Sequence[float]],
                        title: str = "") -> str:
    """Render a ViolinSpec's distribution summaries as a text table."""
    headers = ["series", "mean", "min", "p25", "median", "p75", "max"]
    rows: List[List[object]] = []
    for name, values in named_values.items():
        summary = violin_summary(values)
        rows.append([name, summary["mean"], summary["min"], summary["p25"],
                     summary["median"], summary["p75"], summary["max"]])
    return render_table(headers, rows, title=title)
