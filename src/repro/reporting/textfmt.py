"""Fixed-width text rendering of figure specs.

One dispatch point — :func:`render_spec_text` — turns any
:mod:`repro.reporting.spec` value into the same ASCII the pre-registry
helpers printed, so ``repro study``-era output and the report pipeline share
one formatting path.
"""

from __future__ import annotations

from typing import List

from repro.reporting.histogram import render_bars, render_histogram
from repro.reporting.spec import (
    BarSpec, HistogramSpec, ScatterSpec, Spec, TableSpec, ViolinSpec,
)
from repro.reporting.tables import render_table
from repro.reporting.violin import render_violin_table


def render_spec_text(spec: Spec) -> str:
    """Render one figure spec as fixed-width text."""
    if isinstance(spec, TableSpec):
        return render_table(spec.headers, spec.rows, title=spec.caption)
    if isinstance(spec, ViolinSpec):
        named = {series.name: series.values for series in spec.series}
        return render_violin_table(named, title=spec.caption)
    if isinstance(spec, HistogramSpec):
        return render_histogram(spec.values, bins=spec.bins,
                                title=spec.caption)
    if isinstance(spec, BarSpec):
        return render_bars(spec.values, spec.labels, title=spec.caption)
    if isinstance(spec, ScatterSpec):
        return _render_scatter_text(spec)
    raise TypeError(f"unknown spec type {type(spec).__name__}")


def _render_scatter_text(spec: ScatterSpec, rows: int = 14,
                         cols: int = 56) -> str:
    """A coarse character-grid scatter, one glyph per series."""
    out: List[str] = [spec.caption] if spec.caption else []
    points = [(x, y) for series in spec.series for x, y in series.points]
    if not points:
        return "\n".join(out + ["(empty)"])
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * cols for _ in range(rows)]
    glyphs = "ox+*#@%&"
    for series_index, series in enumerate(spec.series):
        glyph = glyphs[series_index % len(glyphs)]
        for x, y in series.points:
            col = min(int((x - x_lo) / x_span * (cols - 1)), cols - 1)
            row = rows - 1 - min(int((y - y_lo) / y_span * (rows - 1)),
                                 rows - 1)
            grid[row][col] = glyph
    out.append(f"{spec.ylabel} {y_hi:+.2f}".rstrip())
    out.extend("  |" + "".join(line) for line in grid)
    out.append("  +" + "-" * cols)
    out.append(f"  {x_lo:.0f} {spec.xlabel} ... {x_hi:.0f}".rstrip())
    if len(spec.series) > 1:
        out.append("  legend: " + "  ".join(
            f"{glyphs[i % len(glyphs)]}={series.name}"
            for i, series in enumerate(spec.series)))
    return "\n".join(out)
