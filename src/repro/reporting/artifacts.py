"""The default paper-artifact registry entries.

Importing this module (done lazily by :mod:`repro.reporting.report`)
registers every figure and table the paper contributes, in paper order,
plus the beyond-paper artifacts the repo has grown.  Each entry is a thin
declarative template over the computations in :mod:`repro.analysis` and
:mod:`repro.search` — ``repro report --list`` enumerates them, and
``docs/paper_mapping.md`` maps them back to paper sections.
"""

from __future__ import annotations

from typing import List

from repro.analysis.flags import (
    applicability_spec, best_flags_table_spec, best_static_flags,
    mean_speedup, per_flag_impact_specs,
)
from repro.analysis.speedups import (
    blanket_specs, loc_scatter_specs, overall_speedups_spec,
    per_shader_violin_specs, top_shaders_specs,
)
from repro.analysis.static_metrics import corpus_composition_spec
from repro.analysis.uniqueness import uniqueness_specs
from repro.harness.results import StudyResult
from repro.passes import OptimizationFlags
from repro.reporting.report import register_artifact
from repro.reporting.spec import Spec, TableSpec


@register_artifact(
    name="blanket-distribution",
    title="Blanket optimization is not enough",
    paper_ref="Fig. 3, Sec. II",
    description="One fixed flag selection (the LunarGlass defaults) applied "
                "to every shader: some speed up, others slow down, which "
                "motivates per-shader, per-platform flag selection.")
def _blanket(study: StudyResult) -> List[Spec]:
    return list(blanket_specs(study))


@register_artifact(
    name="uniqueness",
    title="Variant uniqueness",
    paper_ref="Fig. 4c, Sec. III-A",
    description="Most of the 256 flag combinations emit identical code: the "
                "distribution of unique variants per shader bounds how much "
                "of the space actually needs measuring.")
def _uniqueness(study: StudyResult) -> List[Spec]:
    return list(uniqueness_specs(study))


@register_artifact(
    name="overall-speedups",
    title="Average speed-ups per platform",
    paper_ref="Fig. 5, Sec. IV-A",
    description="Per platform: the per-shader best variant (the headroom), "
                "the single best static flag selection, and the default "
                "LunarGlass flags, averaged over the corpus.")
def _overall(study: StudyResult) -> List[Spec]:
    return [overall_speedups_spec(study)]


@register_artifact(
    name="top-shaders",
    title="Most-improved shaders",
    paper_ref="Fig. 6, Sec. IV-A",
    description="The shaders with the largest best-variant speed-up on each "
                "platform — where offline optimization pays most.")
def _top_shaders(study: StudyResult) -> List[Spec]:
    return list(top_shaders_specs(study))


@register_artifact(
    name="speedup-violins",
    title="Per-shader speed-up distributions",
    paper_ref="Fig. 7, Sec. IV-B",
    description="Distribution over shaders of the best-possible, default-"
                "LunarGlass, and best-static speed-ups, per platform: the "
                "gap between the best-possible and best-static rows is the "
                "specialization opportunity.")
def _violins(study: StudyResult) -> List[Spec]:
    return list(per_shader_violin_specs(study))


@register_artifact(
    name="flag-applicability",
    title="Flag applicability and optimality",
    paper_ref="Fig. 8, Sec. VI",
    description="Per flag: how many shaders it actually rewrites, and how "
                "often it is part of the optimal 10% of variants on each "
                "platform.")
def _applicability(study: StudyResult) -> List[Spec]:
    return [applicability_spec(study)]


@register_artifact(
    name="per-flag-impact",
    title="Isolated per-flag impact",
    paper_ref="Fig. 9, Sec. VI-D",
    description="Each flag enabled alone, measured against the all-flags-"
                "off baseline (isolating the pass from code-generation "
                "artifacts), per platform.")
def _per_flag(study: StudyResult) -> List[Spec]:
    return list(per_flag_impact_specs(study))


@register_artifact(
    name="best-flags",
    title="Best static flag selections",
    paper_ref="Table I, Sec. IV-A",
    description="The minimal flag selection maximizing mean speed-up on "
                "each platform — the paper's headline that no single "
                "selection is best everywhere.")
def _best_flags(study: StudyResult) -> List[Spec]:
    return [best_flags_table_spec(study)]


@register_artifact(
    name="loc-vs-speedup",
    title="Shader size vs speed-up headroom",
    paper_ref="beyond paper (Sec. IV discussion)",
    description="Lines of GLSL against the best available speed-up, per "
                "platform: optimization headroom is not simply a function "
                "of shader size.")
def _loc_scatter(study: StudyResult) -> List[Spec]:
    return list(loc_scatter_specs(study))


@register_artifact(
    name="corpus-composition",
    title="Corpus composition",
    paper_ref="beyond paper (Sec. III corpus, repro.corpus.synth)",
    description="What the study actually ran over: per-family case counts, "
                "size range, and variant richness, with the hand-written "
                "vs procedurally synthesized split — the provenance line "
                "for scaled-out synth corpora.")
def _corpus_composition(study: StudyResult) -> List[Spec]:
    return [corpus_composition_spec(study)]


@register_artifact(
    name="search-strategies",
    title="Budgeted search vs exhaustive sweep",
    paper_ref="beyond paper (repro.search)",
    description="The repo's budgeted flag-space search strategies replayed "
                "over the study's measurements: best selection found, its "
                "mean speed-up, and the gap to the exhaustive optimum, at a "
                "quarter of the exhaustive budget.")
def _search_strategies(study: StudyResult, budget: int = 64) -> List[Spec]:
    from repro.search.strategies import make_strategy

    rows = []
    for platform in study.platforms:
        objective = _study_objective(study, platform)
        optimum = best_static_flags(study, platform)
        optimum_score = mean_speedup(study, platform, optimum)
        for name in ("random", "greedy", "genetic"):
            outcome = make_strategy(name, seed=study.seed).search(
                objective, budget=budget)
            found = OptimizationFlags.from_index(outcome.best_index)
            rows.append((platform, name, str(found), outcome.best_score,
                         optimum_score, optimum_score - outcome.best_score,
                         outcome.points_evaluated))
    return [TableSpec.make(
        ["platform", "strategy", "best found", "mean %", "optimum %",
         "gap pp", "evaluated"],
        rows,
        caption=f"Search strategies at budget {budget}/256, replayed from "
                "cached study measurements (zero new evaluations)")]


def _study_objective(study: StudyResult, platform: str):
    """Mean corpus speed-up as a function of flag index, answered entirely
    from the study's already-measured variants."""

    def objective(flag_index: int) -> float:
        if not study.shaders:
            return 0.0
        flags = OptimizationFlags.from_index(flag_index)
        total = sum(s.speedup_pct(platform, flags) for s in study.shaders)
        return total / len(study.shaders)

    return objective
