"""The paper-artifact registry and the report pipeline.

Every table/figure the paper contributes is a registered :class:`Artifact`:
a name, the paper section/figure it reproduces, and a compute function from
:class:`~repro.harness.results.StudyResult` to declarative figure specs
(:mod:`repro.reporting.spec`).  The :class:`ReportBuilder` runs (or loads) a
study through the shared :class:`~repro.search.engine.EvaluationEngine` —
so a warm result cache re-renders every artifact with zero compiles and
zero measurements — evaluates the registered artifacts, and emits one
navigable ``report.md`` / ``report.html`` plus a fixed-width text rendition.

Artifact computations are pure functions of the study numbers, and every
renderer uses fixed formatting, so the emitted reports are byte-identical
across runs and ``--jobs`` settings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple, Union,
)

from repro.reporting.markdown import render_spec_markdown
from repro.reporting.spec import Spec
from repro.reporting.svg import REPORT_CSS, render_spec_svg
from repro.reporting.textfmt import render_spec_text

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.harness.results import ShaderCase, StudyResult
    from repro.harness.study import StudyConfig
    from repro.search.engine import EvaluationEngine

ComputeFn = Callable[["StudyResult"], Sequence[Spec]]


@dataclass(frozen=True)
class Artifact:
    """One registered paper artifact (a figure or table template)."""

    name: str            # CLI handle, e.g. "best-flags"
    title: str           # human heading
    paper_ref: str       # the paper section/figure reproduced, e.g. "Fig. 5"
    description: str     # one paragraph for the report body
    compute: ComputeFn   # StudyResult -> figure specs


_REGISTRY: Dict[str, Artifact] = {}


def register_artifact(name: str, title: str, paper_ref: str,
                      description: str) -> Callable[[ComputeFn], ComputeFn]:
    """Decorator: register ``compute`` under ``name`` (insertion-ordered)."""

    def decorator(compute: ComputeFn) -> ComputeFn:
        if name in _REGISTRY:
            raise ValueError(f"artifact {name!r} registered twice")
        _REGISTRY[name] = Artifact(name=name, title=title,
                                   paper_ref=paper_ref,
                                   description=description, compute=compute)
        return compute

    return decorator


def _ensure_default_artifacts() -> None:
    # Imported lazily: repro.reporting.artifacts pulls in repro.analysis,
    # which itself imports reporting submodules for the spec types.
    import repro.reporting.artifacts  # noqa: F401


def all_artifacts() -> List[Artifact]:
    """Every registered artifact, in registration (= paper) order."""
    _ensure_default_artifacts()
    return list(_REGISTRY.values())


def artifact_names() -> List[str]:
    """The registered artifact names, in registration (= paper) order."""
    return [artifact.name for artifact in all_artifacts()]


def get_artifact(name: str) -> Artifact:
    """The registered artifact named *name* (KeyError if unknown)."""
    _ensure_default_artifacts()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown artifact {name!r}; registered: {known}") \
            from None


@dataclass(frozen=True)
class ReportSection:
    """One evaluated artifact: its template plus the computed figures."""

    artifact: Artifact
    specs: Tuple[Spec, ...]


@dataclass
class Report:
    """A fully evaluated report, renderable to text, Markdown, and HTML."""

    platforms: List[str]
    shader_count: int
    seed: int
    sections: List[ReportSection] = field(default_factory=list)
    title: str = "Shader compiler optimization study — paper artifacts"

    def _subtitle(self) -> str:
        return (f"{self.shader_count} shaders x "
                f"{len(self.platforms)} platforms "
                f"({', '.join(self.platforms)}), seed {self.seed}")

    # ------------------------------------------------------------------
    # Renderers
    # ------------------------------------------------------------------

    def to_text(self) -> str:
        out = [self.title, self._subtitle()]
        for section in self.sections:
            artifact = section.artifact
            out.append("")
            out.append(f"== {artifact.title} [{artifact.paper_ref}] "
                       f"({artifact.name}) ==")
            for spec in section.specs:
                out.append("")
                out.append(render_spec_text(spec))
        return "\n".join(out) + "\n"

    def to_markdown(self) -> str:
        out = [f"# {self.title}", "", self._subtitle(), "", "## Contents", ""]
        for section in self.sections:
            artifact = section.artifact
            out.append(f"- [{artifact.title}](#{artifact.name}) — "
                       f"{artifact.paper_ref}")
        for section in self.sections:
            artifact = section.artifact
            out.append("")
            out.append(f'<a id="{artifact.name}"></a>')
            out.append("")
            out.append(f"## {artifact.title} ({artifact.paper_ref})")
            out.append("")
            out.append(artifact.description)
            for spec in section.specs:
                out.append("")
                out.append(render_spec_markdown(spec))
        return "\n".join(out) + "\n"

    def to_html(self) -> str:
        import html as _html

        def esc(text: str) -> str:
            return _html.escape(str(text), quote=True)

        out = [
            "<!DOCTYPE html>",
            '<html lang="en"><head><meta charset="utf-8">',
            f"<title>{esc(self.title)}</title>",
            f"<style>\n{REPORT_CSS}</style>",
            "</head><body>",
            f"<h1>{esc(self.title)}</h1>",
            f'<p class="vz-ref">{esc(self._subtitle())}</p>',
            "<nav><ul>",
        ]
        for section in self.sections:
            artifact = section.artifact
            out.append(f'<li><a href="#{artifact.name}">'
                       f"{esc(artifact.title)}</a> "
                       f'<span class="vz-ref">{esc(artifact.paper_ref)}'
                       "</span></li>")
        out.append("</ul></nav>")
        for section in self.sections:
            artifact = section.artifact
            out.append(f'<section id="{artifact.name}">')
            out.append(f"<h2>{esc(artifact.title)} "
                       f'<span class="vz-ref">({esc(artifact.paper_ref)})'
                       "</span></h2>")
            out.append(f"<p>{esc(artifact.description)}</p>")
            for spec in section.specs:
                out.append(render_spec_svg(spec))
            out.append("</section>")
        out.append("</body></html>")
        return "\n".join(out) + "\n"

    def write(self, out_dir: Union[str, Path]) -> Dict[str, Path]:
        """Emit ``report.md`` and ``report.html`` under ``out_dir``."""
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        paths = {"md": out_dir / "report.md", "html": out_dir / "report.html"}
        # Pinned encoding and newlines keep the byte-identical guarantee
        # across platforms and locales.
        with paths["md"].open("w", encoding="utf-8", newline="\n") as handle:
            handle.write(self.to_markdown())
        with paths["html"].open("w", encoding="utf-8", newline="\n") as handle:
            handle.write(self.to_html())
        return paths


class ReportBuilder:
    """Evaluate registered artifacts over a study, reusing the engine cache.

    The builder owns one :class:`EvaluationEngine` (optionally injected) so
    report generation and the study share the same content-addressed result
    cache: after one cache-warm run, :meth:`run_study` performs zero
    compiles and zero measurements — re-rendering is incremental by
    construction (assert it via ``engine.compile_count`` /
    ``engine.measure_count``).
    """

    def __init__(self, engine: Optional["EvaluationEngine"] = None,
                 config: Optional["StudyConfig"] = None):
        from repro.harness.study import StudyConfig
        self.config = config or StudyConfig()
        if engine is None:
            from repro.gpu.platform import all_platforms
            from repro.search.cache import ResultCache
            from repro.search.engine import EvaluationEngine
            platforms = list(self.config.platforms or all_platforms())
            engine = EvaluationEngine(platforms=platforms,
                                      seed=self.config.seed,
                                      cache=ResultCache(self.config.cache_path))
        self.engine = engine

    def run_study(self, corpus: Sequence["ShaderCase"]) -> "StudyResult":
        from repro.harness.study import run_study
        return run_study(corpus, self.config, engine=self.engine)

    def build(self, study: "StudyResult",
              only: Optional[Sequence[str]] = None) -> Report:
        selected = ([get_artifact(name) for name in only] if only
                    else all_artifacts())
        sections = [ReportSection(artifact=artifact,
                                  specs=tuple(artifact.compute(study)))
                    for artifact in selected]
        return Report(platforms=list(study.platforms),
                      shader_count=len(study.shaders), seed=study.seed,
                      sections=sections)

    def build_from_corpus(self, corpus: Sequence["ShaderCase"],
                          only: Optional[Sequence[str]] = None) -> Report:
        return self.build(self.run_study(corpus), only=only)
