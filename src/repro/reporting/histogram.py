"""ASCII histograms / bar charts for distribution figures (Fig. 4, Fig. 7)."""

from __future__ import annotations

from typing import List, Sequence

_BAR = "#"
_WIDTH = 50


def render_bars(values: Sequence[float], labels: Sequence[str] = (),
                title: str = "", width: int = _WIDTH) -> str:
    """One bar per value (the paper's sorted per-shader plots)."""
    out: List[str] = [title] if title else []
    if not values:
        return "\n".join(out + ["(empty)"])
    peak = max(abs(v) for v in values) or 1.0
    for index, value in enumerate(values):
        label = labels[index] if index < len(labels) else str(index)
        bar = _BAR * max(1, int(abs(value) / peak * width)) if value else ""
        sign = "-" if value < 0 else " "
        out.append(f"{label:>24s} {value:+8.2f} {sign}{bar}")
    return "\n".join(out)


def render_histogram(values: Sequence[float], bins: int = 12,
                     title: str = "", width: int = _WIDTH) -> str:
    """Binned counts (for LoC / cycle distributions)."""
    out: List[str] = [title] if title else []
    if not values:
        return "\n".join(out + ["(empty)"])
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    counts = [0] * bins
    for value in values:
        index = min(int((value - lo) / span * bins), bins - 1)
        counts[index] += 1
    peak = max(counts) or 1
    for index, count in enumerate(counts):
        left = lo + span * index / bins
        right = lo + span * (index + 1) / bins
        bar = _BAR * int(count / peak * width)
        out.append(f"[{left:8.1f},{right:8.1f}) {count:4d} {bar}")
    return "\n".join(out)
