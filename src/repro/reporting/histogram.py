"""ASCII histograms / bar charts for distribution figures (Fig. 4, Fig. 7).

The binning itself lives in :func:`histogram_bins` so the text renderer here
and the SVG renderer (:mod:`repro.reporting.svg`) draw the exact same bins.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

_BAR = "#"
_WIDTH = 50


def histogram_bins(values: Sequence[float],
                   bins: int = 12) -> List[Tuple[float, float, int]]:
    """Equal-width ``(left, right, count)`` bins covering ``values``."""
    if not values:
        return []
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    counts = [0] * bins
    for value in values:
        index = min(int((value - lo) / span * bins), bins - 1)
        counts[index] += 1
    return [(lo + span * i / bins, lo + span * (i + 1) / bins, count)
            for i, count in enumerate(counts)]


def render_bars(values: Sequence[float], labels: Sequence[str] = (),
                title: str = "", width: int = _WIDTH) -> str:
    """One bar per value (the paper's sorted per-shader plots)."""
    out: List[str] = [title] if title else []
    if not values:
        return "\n".join(out + ["(empty)"])
    peak = max(abs(v) for v in values) or 1.0
    for index, value in enumerate(values):
        label = labels[index] if index < len(labels) else str(index)
        bar = _BAR * max(1, int(abs(value) / peak * width)) if value else ""
        sign = "-" if value < 0 else " "
        out.append(f"{label:>24s} {value:+8.2f} {sign}{bar}")
    return "\n".join(out)


def render_histogram(values: Sequence[float], bins: int = 12,
                     title: str = "", width: int = _WIDTH) -> str:
    """Binned counts (for LoC / cycle distributions)."""
    out: List[str] = [title] if title else []
    if not values:
        return "\n".join(out + ["(empty)"])
    binned = histogram_bins(values, bins)
    peak = max(count for _, _, count in binned) or 1
    for left, right, count in binned:
        bar = _BAR * int(count / peak * width)
        out.append(f"[{left:8.1f},{right:8.1f}) {count:4d} {bar}")
    return "\n".join(out)
