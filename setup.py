"""Shim for environments without the `wheel` package, where pip's PEP 660
editable path can't build: `python setup.py develop` installs straight from
the pyproject.toml metadata.  Normal installs should use `pip install -e .`.
"""

from setuptools import setup

setup()
