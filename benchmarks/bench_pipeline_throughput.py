"""Compiler-infrastructure throughput benchmarks (pytest-benchmark timing of
the pipeline itself rather than a paper figure): how fast the offline
optimizer, the variant explosion, and a platform measurement run."""

from repro.core import ShaderCompiler, compile_shader
from repro.corpus import MOTIVATING_SHADER
from repro.gpu.vendors import NVIDIA
from repro.harness.environment import ShaderExecutionEnvironment
from repro.passes import DEFAULT_LUNARGLASS, OptimizationFlags


def test_bench_full_pipeline_compile(benchmark):
    result = benchmark(compile_shader, MOTIVATING_SHADER, DEFAULT_LUNARGLASS)
    assert result.output


def test_bench_all_256_variants(benchmark):
    compiler = ShaderCompiler(MOTIVATING_SHADER)
    variants = benchmark(compiler.all_variants)
    assert 1 < variants.unique_count <= 48


def test_bench_environment_run(benchmark):
    env = ShaderExecutionEnvironment(NVIDIA)
    report = benchmark(env.run, MOTIVATING_SHADER, 7)
    assert report.true_ns > 0
