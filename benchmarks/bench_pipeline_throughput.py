"""Compiler-infrastructure throughput benchmarks (pytest-benchmark timing of
the pipeline itself rather than a paper figure): how fast the offline
optimizer, the variant explosion, and a platform measurement run."""

from repro.core import ShaderCompiler, compile_shader
from repro.corpus import MOTIVATING_SHADER
from repro.gpu.vendors import NVIDIA
from repro.harness.environment import ShaderExecutionEnvironment
from repro.passes import DEFAULT_LUNARGLASS, OptimizationFlags


def test_bench_full_pipeline_compile(benchmark):
    result = benchmark(compile_shader, MOTIVATING_SHADER, DEFAULT_LUNARGLASS)
    assert result.output


def test_bench_all_256_variants(benchmark):
    compiler = ShaderCompiler(MOTIVATING_SHADER)
    variants = benchmark(compiler.all_variants)
    assert 1 < variants.unique_count <= 48


def test_bench_256_variants_naive(benchmark):
    compiler = ShaderCompiler(MOTIVATING_SHADER)
    variants = benchmark(lambda: compiler.all_variants(mode="naive"))
    assert 1 < variants.unique_count <= 48


def test_bench_trie_variants(benchmark):
    """Naive-vs-trie A/B: the trie must be faster AND byte-identical."""
    compiler = ShaderCompiler(MOTIVATING_SHADER)
    baseline = compiler.all_variants(mode="naive")
    variants = benchmark(lambda: compiler.all_variants(mode="trie"))
    assert variants.index_to_text == baseline.index_to_text
    assert variants.by_text == baseline.by_text


def test_bench_environment_run(benchmark):
    env = ShaderExecutionEnvironment(NVIDIA)
    report = benchmark(env.run, MOTIVATING_SHADER, 7)
    assert report.true_ns > 0
