"""Fig. 4: corpus characterisation.

(a) LoC after preprocessing: power-law-ish, most shaders < 50 lines, max
    around 300; (b) ARM static cycle counts: similar long-tailed shape;
(c) unique LunarGlass variants per shader: max <= 48, most < 10.
"""

from repro.analysis.cycle_analyzer import arm_static_cycles
from repro.analysis.static_metrics import loc_distribution, loc_summary
from repro.analysis.uniqueness import uniqueness_summary, variant_count_distribution
from repro.reporting import render_histogram


def test_fig4a_lines_of_code(benchmark, corpus):
    values = benchmark(loc_distribution, corpus)
    summary = loc_summary(corpus)
    print()
    print(render_histogram(values, title="Fig. 4a: LoC after preprocessing"))
    print(f"shaders={summary['count']} max={summary['max']} "
          f"median={summary['median']} <50LoC={summary['fraction_under_50']:.0%}")
    print("paper: most shaders <50 lines, longest ~300")
    assert summary["fraction_under_50"] > 0.5
    assert summary["max"] <= 300


def test_fig4b_arm_static_cycles(benchmark, corpus):
    sample = corpus  # full corpus; the analyser is static and fast
    values = benchmark(lambda: sorted(
        (arm_static_cycles(c.source) for c in sample), reverse=True))
    print()
    print(render_histogram(values,
                           title="Fig. 4b: ARM static cycles "
                                 "(arith+load/store+texture, longest path)"))
    # Power-law-like: the median shader is far below the max.
    assert values[len(values) // 2] < values[0] / 3


def test_fig4c_unique_variants(benchmark, study):
    values = benchmark(variant_count_distribution, study)
    summary = uniqueness_summary(study)
    print()
    print(render_histogram(values, bins=10,
                           title="Fig. 4c: unique variants per shader "
                                 "(of 256 combinations)"))
    print(f"max={summary['max']} median={summary['median']} "
          f"<10 variants={summary['fraction_under_10']:.0%} "
          f"total measured={summary['total_measured_variants']}")
    print("paper: max 48 distinct versions, most shaders <10")
    assert summary["max"] <= 48
    assert summary["fraction_under_10"] > 0.5
