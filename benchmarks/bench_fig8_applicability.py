"""Fig. 8: per-flag applicability (does the flag change the emitted code?)
and optimality (is it on in the best 10% of variants?).

Paper signals: ADCE never applies; Coalesce applies to almost every shader;
Div-to-Mul and FP-Reassociate apply to >50%; Unroll/Hoist apply rarely
(few shaders have loops / flattenable branches).
"""

from repro.analysis.flags import flag_applicability
from repro.passes import ALL_FLAG_NAMES
from repro.passes.flags import FLAG_LABELS
from repro.reporting import render_table


def test_fig8_flag_applicability(benchmark, study):
    platform = "Intel"  # counts of code change are platform-independent
    stats = benchmark(flag_applicability, study, platform)

    rows = []
    for name in ALL_FLAG_NAMES:
        stat = stats[name]
        rows.append((FLAG_LABELS[name], stat.total_shaders, stat.changes_code,
                     stat.in_optimal_set,
                     f"{stat.applicability:.0%}"))
    print()
    print(render_table(
        ["flag", "shaders (blue)", "changes code (red)",
         "in optimal set (green)", "applicability"],
        rows, title=f"Fig. 8: flag applicability/optimality ({platform})"))

    total = stats["adce"].total_shaders
    assert stats["adce"].changes_code == 0, "ADCE never changes the output"
    # Divergence from the paper (documented in EXPERIMENTS.md): our
    # lowering builds constructor vectors directly, so only swizzle-writing
    # shaders leave insert chains for Coalesce — lower applicability than
    # LunarGlass's near-universal count.
    assert stats["coalesce"].changes_code > 0
    assert stats["fp_reassociate"].changes_code > total * 0.5, \
        "FP reassociation applies to >50% of shaders"
    assert stats["div_to_mul"].changes_code > total * 0.2
    assert stats["unroll"].changes_code < total * 0.5, \
        "few shaders contain loops"
    assert stats["reassociate"].changes_code < stats[
        "fp_reassociate"].changes_code, \
        "integer reassociation applies less than the FP variant"
