"""Ablation benches for the design choices DESIGN.md calls out.

1. Driver-JIT ablation: with vendor JIT optimizations disabled, offline
   Unroll helps on *every* platform (JIT redundancy is the mechanism that
   makes it a no-op on Intel/NVIDIA).
2. ISA ablation: running the Mali workload on a scalar-ISA variant of the
   Mali model flips FP-Reassociate's scalar grouping from harmful to helpful.
3. Noise ablation: with the timer noise zeroed, no-op flags (ADCE) measure
   *exactly* zero.
"""

import dataclasses

from repro.core import ShaderCompiler
from repro.corpus import default_corpus
from repro.gpu.jit import VendorJIT
from repro.gpu.timing import TimerModel
from repro.gpu.vendors import ARM, INTEL
from repro.harness.environment import ShaderExecutionEnvironment
from repro.passes import OptimizationFlags
from repro.reporting import render_table

LOOPY = [c for c in default_corpus(families=["blur", "ssao"])]


def _speedup(platform, base_text, opt_text, seed=5):
    env = ShaderExecutionEnvironment(platform)
    base = env.run(base_text, seed=seed).measurement.mean_ns
    opt = env.run(opt_text, seed=seed + 1).measurement.mean_ns
    return (base / opt - 1.0) * 100.0


def test_ablation_driver_jit_redundancy(benchmark):
    """Intel's driver unrolls; strip that and offline Unroll matters again."""
    case = LOOPY[2]  # blur.taps9
    compiler = ShaderCompiler(case.source)
    base_text = compiler.compile(OptimizationFlags.none()).output
    opt_text = compiler.compile(OptimizationFlags.single("unroll")).output

    no_jit_intel = dataclasses.replace(
        INTEL, jit=VendorJIT(name="intel-nojit", passes=(),
                             unroll_max_trips=0))

    def compute():
        return (_speedup(INTEL, base_text, opt_text),
                _speedup(no_jit_intel, base_text, opt_text))

    with_jit, without_jit = benchmark(compute)
    print()
    print(render_table(
        ["configuration", "offline-unroll speed-up %"],
        [("stock Intel driver (unrolls itself)", with_jit),
         ("Intel driver with optimizations disabled", without_jit)],
        title="Ablation 1: driver-JIT redundancy"))
    assert abs(with_jit) < 2.0, "stock driver makes offline unroll a no-op"
    assert without_jit > 10.0, "without the JIT the offline pass matters"


def test_ablation_vector_isa_mechanism(benchmark):
    """FP-Reassociate's scalar grouping: harmful on Mali's vector ISA,
    helpful on an otherwise-identical scalar ISA."""
    source = """
uniform float f1;
uniform float f2;
uniform sampler2D t;
in vec2 uv;
out vec4 f;
void main() {
    vec4 v = texture(t, uv);
    f = f1 * (f2 * (v * 0.25)) + f1 * (f2 * (v * 0.75));
}
"""
    compiler = ShaderCompiler(source)
    base_text = compiler.compile(OptimizationFlags.none()).output
    opt_text = compiler.compile(
        OptimizationFlags.single("fp_reassociate")).output

    scalar_mali = dataclasses.replace(
        ARM, spec=dataclasses.replace(ARM.spec, isa="scalar",
                                      scalar_op_penalty=1.0))

    def compute():
        return (_speedup(ARM, base_text, opt_text),
                _speedup(scalar_mali, base_text, opt_text))

    vector_isa, scalar_isa = benchmark(compute)
    print()
    print(render_table(
        ["Mali model", "FP-reassociate speed-up %"],
        [("vector ISA (real Mali-T880)", vector_isa),
         ("scalar-ISA counterfactual", scalar_isa)],
        title="Ablation 2: the vector-ISA mechanism behind ARM's FP trough"))
    assert scalar_isa > vector_isa, \
        "scalar grouping must be relatively better on the scalar ISA"


def test_ablation_zero_noise(benchmark):
    """With timer noise off, the ADCE variant measures exactly like none."""
    case = LOOPY[0]
    compiler = ShaderCompiler(case.source)
    none_text = compiler.compile(OptimizationFlags.none()).output
    adce_text = compiler.compile(OptimizationFlags.single("adce")).output
    quiet = dataclasses.replace(
        INTEL, timer=TimerModel(sigma=0.0, overhead_ns=0.0, quantum_ns=0.0))

    def compute():
        env = ShaderExecutionEnvironment(quiet)
        return (env.run(none_text, seed=1).measurement.mean_ns,
                env.run(adce_text, seed=99).measurement.mean_ns)

    t_none, t_adce = benchmark(compute)
    print(f"\nAblation 3: zero-noise ADCE delta = {t_adce - t_none:.3f} ns "
          f"(paper: ADCE 'should result in exactly zero speed up in the "
          f"absence of noise')")
    assert t_none == t_adce
