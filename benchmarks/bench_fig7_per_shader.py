"""Fig. 7: per-shader speed-up distributions per platform.

Green (best possible) vs red (default LunarGlass) vs blue (best static):
peaks and troughs of 10-30% around a large near-zero mid-section.
"""

from repro.analysis.speedups import per_shader_distribution
from repro.reporting import render_bars


def test_fig7_per_shader_distributions(benchmark, study):
    def compute():
        return {p: per_shader_distribution(study, p) for p in study.platforms}

    distributions = benchmark(compute)
    print()
    for platform, dist in distributions.items():
        head = list(zip(dist.best_possible, dist.shaders))[:8]
        tail = list(zip(dist.default_lunarglass, dist.shaders))
        tail = sorted(tail)[:4]
        print(render_bars([v for v, _ in head], [n for _, n in head],
                          title=f"Fig. 7 ({platform}): best-possible speed-up, "
                                f"top shaders"))
        print(render_bars([v for v, _ in tail], [n for _, n in tail],
                          title=f"Fig. 7 ({platform}): default-LunarGlass "
                                f"worst shaders"))
        print()

    for platform, dist in distributions.items():
        # Best-possible can dip slightly below zero: every variant passes
        # through the source-to-source tool, and "there are cases where all
        # optimizations cause slow-downs due to compilation artefacts"
        # (paper Section VI-C) — but never far below.
        assert min(dist.best_possible) > -10.0
        assert max(dist.best_possible) > 10.0, platform
        assert min(dist.default_lunarglass) < -2.0, \
            f"{platform}: defaults should hurt some shaders (artifacts)"
        near_zero = sum(1 for v in dist.best_possible if abs(v) < 2.0)
        assert near_zero >= len(dist.best_possible) * 0.3, \
            "a large near-zero mid-section (simple shaders)"
