"""Search-strategy efficiency: evaluations to reach within 1% of optimum.

The exhaustive study pays all 256 points per platform.  This benchmark
replays each budgeted strategy against the completed study's flag-space
landscape (a pure lookup objective — no recompilation) and reports how many
unique evaluations each needs before its best-so-far flag set is within 1%
of the exhaustive per-platform optimum, i.e. how much of the paper's
brute-force budget a guided search actually requires.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.analysis.flags import mean_speedup
from repro.harness.results import StudyResult
from repro.passes import OptimizationFlags
from repro.passes.flags import SPACE_SIZE
from repro.reporting import render_table
from repro.search import Genetic, GreedyHillClimb, RandomSampling

#: Within-1% criterion, as a time ratio against the optimum.
GAP_LIMIT = 0.01


def landscape(study: StudyResult, platform: str) -> Callable[[int], float]:
    scores = [mean_speedup(study, platform, OptimizationFlags.from_index(i))
              for i in range(SPACE_SIZE)]
    return lambda index: scores[index]


def within_one_pct_threshold(optimum_score: float) -> float:
    """The lowest mean-speedup score whose time ratio to the optimum
    is within GAP_LIMIT."""
    optimum_factor = 1.0 + optimum_score / 100.0
    return (optimum_factor / (1.0 + GAP_LIMIT) - 1.0) * 100.0


def test_evaluations_to_within_one_pct_of_optimum(benchmark, study):
    strategies = [RandomSampling(seed=2018), GreedyHillClimb(seed=2018),
                  Genetic(seed=2018)]
    # Landscapes come straight off the completed study, outside the timed
    # region — the benchmark measures the searches, not the table lookups.
    landscapes = {}
    for platform in study.platforms:
        objective = landscape(study, platform)
        optimum = max(objective(i) for i in range(SPACE_SIZE))
        landscapes[platform] = (objective, within_one_pct_threshold(optimum))

    def compute() -> Dict[str, Dict[str, int]]:
        needed: Dict[str, Dict[str, int]] = {}
        for platform, (objective, threshold) in landscapes.items():
            needed[platform] = {}
            for strategy in strategies:
                outcome = strategy.search(objective, budget=SPACE_SIZE)
                count = outcome.evaluations_to_reach(threshold)
                needed[platform][strategy.name] = (
                    count if count is not None else SPACE_SIZE + 1)
        return needed

    needed = benchmark(compute)

    names = [s.name for s in strategies]
    rows = [[platform] + [needed[platform][name] for name in names]
            for platform in study.platforms]
    print()
    print(render_table(
        ["platform"] + names, rows,
        title="Evaluations to reach within 1% of the exhaustive optimum "
              f"(space = {SPACE_SIZE} points)"))

    for platform in study.platforms:
        for name in names:
            count = needed[platform][name]
            assert count <= SPACE_SIZE, (
                f"{name} never reached within 1% on {platform}")
            # Every budgeted strategy should beat the paper's brute-force
            # spend by at least 4x on every platform.
            assert count <= SPACE_SIZE // 4, (
                f"{name} needed {count} evaluations on {platform}")
        assert needed[platform]["genetic"] <= 64, (
            "the acceptance criterion: genetic within 1% in <= 25% of space")
