"""Table I: the best static flag set per platform.

Paper rows:
  Intel     Coalesce Unroll FP-Reassoc Div2Mul
  AMD       Coalesce Unroll FP-Reassoc Div2Mul
  NVIDIA    Coalesce Unroll FP-Reassoc
  ARM       Coalesce GVN Reassoc Unroll Hoist       (the defaults)
  Qualcomm  Coalesce FP-Reassoc Div2Mul

Near-zero flags toggle freely under measurement noise (the paper says as
much for ADCE/DivToMul/Coalesce), so the asserted reproduction targets are
the *material* signals: Unroll on AMD/ARM, FP-Reassociate everywhere except
ARM, and ADCE never required.
"""

from repro.analysis.flags import best_static_flags, mean_speedup
from repro.passes import ALL_FLAG_NAMES, OptimizationFlags
from repro.passes.flags import FLAG_LABELS
from repro.reporting import render_table


def test_table1_best_static_flags(benchmark, study):
    def compute():
        return {p: best_static_flags(study, p) for p in study.platforms}

    best = benchmark(compute)

    rows = []
    for platform, flags in best.items():
        marks = ["x" if getattr(flags, name) else "-" for name in ALL_FLAG_NAMES]
        rows.append([platform] + marks +
                    [mean_speedup(study, platform, flags)])
    print()
    print(render_table(
        ["platform"] + [FLAG_LABELS[n] for n in ALL_FLAG_NAMES] + ["mean %"],
        rows, title="Table I: best static flags per platform"))

    for platform, flags in best.items():
        assert not flags.adce, "ADCE never needed in a minimal optimal set"
        assert flags.coalesce, f"{platform}: coalesce is in every paper row"
    fp_count = sum(best[p].fp_reassociate for p in best)
    assert fp_count >= 4, "the unsafe FP pass dominates most static sets"
    assert best["AMD"].unroll, "AMD gains most from offline unrolling"
    assert best["ARM"].unroll, "unroll is ARM's best flag"
