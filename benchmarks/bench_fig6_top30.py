"""Fig. 6: the 30 most-improved shaders per platform (paper: average speed-up
of 4-13% across those shaders)."""

from repro.analysis.speedups import top_shaders
from repro.reporting import render_table


def test_fig6_top30_shaders(benchmark, study):
    def compute():
        return {p: top_shaders(study, p, count=30) for p in study.platforms}

    per_platform = benchmark(compute)
    rows = []
    for platform, scores in per_platform.items():
        values = list(scores.values())
        rows.append((platform, sum(values) / len(values), max(values)))
    print()
    print(render_table(["platform", "top-30 mean %", "top-30 best %"], rows,
                       title="Fig. 6: 30 most-improved shaders per platform"))
    print("paper: top-30 averages of 4-13%, individual gains up to ~25%")
    for platform, mean, best in rows:
        assert mean > 1.0, f"{platform}: top-30 average should be material"
        assert best >= mean
