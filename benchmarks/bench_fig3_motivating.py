"""Fig. 3: the motivating blur example.

Paper: optimizing Listing 1 gives +7-28% on desktop and +35-45% on mobile;
but applying one blanket flag set to ALL shaders on the Mali gives a wide
distribution (+10% .. -30%), motivating per-shader adaptivity.
"""

from repro.analysis.flags import best_static_flags
from repro.analysis.speedups import blanket_distribution
from repro.core import ShaderCompiler
from repro.corpus import MOTIVATING_SHADER
from repro.gpu.platform import all_platforms
from repro.harness.environment import ShaderExecutionEnvironment
from repro.passes import OptimizationFlags
from repro.reporting import render_bars, render_table

_OPT_FLAGS = OptimizationFlags(unroll=True, fp_reassociate=True,
                               div_to_mul=True, coalesce=True)


def test_fig3_motivating_example(benchmark, study):
    compiler = ShaderCompiler(MOTIVATING_SHADER)
    optimized = compiler.compile(_OPT_FLAGS).output

    def measure_all():
        rows = []
        for platform in all_platforms():
            env = ShaderExecutionEnvironment(platform)
            base = env.run(MOTIVATING_SHADER, seed=42).measurement.mean_ns
            opt = env.run(optimized, seed=43).measurement.mean_ns
            rows.append((platform.name, platform.device,
                         (base / opt - 1.0) * 100.0))
        return rows

    rows = benchmark(measure_all)

    print()
    print(render_table(
        ["platform", "device", "speed-up %"], rows,
        title="Fig. 3 (left): motivating blur shader, optimized vs original"))
    desktop = [r[2] for r in rows if r[0] in ("Intel", "AMD", "NVIDIA")]
    mobile = [r[2] for r in rows if r[0] in ("ARM", "Qualcomm")]
    print(f"paper: desktop +7..28%, mobile +35..45%")
    print(f"ours:  desktop +{min(desktop):.0f}..{max(desktop):.0f}%, "
          f"mobile +{min(mobile):.0f}..{max(mobile):.0f}%")
    for r in rows:
        assert r[2] > 0, "optimization must win on every platform"

    # Right half of Fig. 3: blanket best-static flags on ARM across shaders.
    arm_static = best_static_flags(study, "ARM")
    dist = blanket_distribution(study, "ARM", arm_static)
    print()
    print(render_bars(dist[:12] + dist[-12:],
                      title="Fig. 3 (right): blanket flags on ARM, "
                            "best/worst shaders (speed-up %)"))
    assert max(dist) > 0 > min(dist), \
        "blanket optimization must help some shaders and hurt others"
