"""Shared study fixture for the benchmark harness.

The exhaustive study (48+ shaders x 256 combos x 5 platforms) takes about a
minute; it runs once per session and is cached on disk under ``.cache/`` so
repeated benchmark invocations print their figures from the same data.
Delete ``.cache/study.json`` to force a fresh run.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro import StudyConfig, default_corpus, run_study
from repro.harness.results import StudyResult

_CACHE = pathlib.Path(__file__).resolve().parent.parent / ".cache" / "study.json"


@pytest.fixture(scope="session")
def study() -> StudyResult:
    if _CACHE.exists() and not os.environ.get("REPRO_FORCE_STUDY"):
        try:
            return StudyResult.from_json(_CACHE.read_text())
        except Exception:
            pass
    result = run_study(default_corpus(), StudyConfig())
    _CACHE.parent.mkdir(exist_ok=True)
    _CACHE.write_text(result.to_json())
    return result


@pytest.fixture(scope="session")
def corpus():
    return default_corpus()
