"""Fig. 5: average speed-ups across all shaders per platform.

Paper: the tuned technique averages +1-4%; default LunarGlass averages
0..-0.7% (i.e. best-static/best-possible clearly beat the defaults, which
hover near or below zero relative to their upside).
"""

from repro.analysis.speedups import average_speedups
from repro.reporting import render_table


def test_fig5_average_speedups(benchmark, study):
    rows = benchmark(average_speedups, study)
    print()
    print(render_table(
        ["platform", "best possible %", "best static %", "default LunarGlass %"],
        [(r.platform, r.best_possible, r.best_static, r.default_lunarglass)
         for r in rows],
        title="Fig. 5: average speed-up across all shaders"))
    print("paper: per-shader tuning 1-4%; defaults 0..-0.7% "
          "(shape: tuned >> default, default worst of the three)")
    for row in rows:
        assert row.best_possible >= row.best_static >= 0.0
        assert row.best_static >= row.default_lunarglass, \
            "tuned flags must match or beat the LunarGlass defaults"
