"""Fig. 9: isolated per-flag speed-up distributions (violins) per platform,
measured against the all-flags-off LunarGlass baseline.

Key paper shapes asserted here:
- ADCE: exactly zero (modulo noise);
- Unroll: always-positive and largest on AMD, near-zero on Intel/NVIDIA
  (their drivers already unroll), material on ARM;
- FP-Reassociate: positive mean on every scalar-ISA platform, a deep (~-20%)
  trough on the vector-ISA ARM Mali;
- GVN: only Qualcomm (no driver GVN) sees real gains;
- Hoist: wide spread with deep pathological troughs on every platform.
"""

from repro.analysis.flags import isolated_flag_impact
from repro.passes import ALL_FLAG_NAMES
from repro.reporting import render_violin_table


def test_fig9_isolated_flag_impacts(benchmark, study):
    def compute():
        return {
            platform: {name: isolated_flag_impact(study, platform, name)
                       for name in ALL_FLAG_NAMES}
            for platform in study.platforms
        }

    impacts = benchmark(compute)

    print()
    for platform, flags in impacts.items():
        print(render_violin_table(
            {name: impact.speedups_pct for name, impact in flags.items()},
            title=f"Fig. 9 ({platform}): isolated flag speed-up % "
                  f"vs all-off baseline"))
        print()

    # ADCE: pure noise.
    for platform in study.platforms:
        assert abs(impacts[platform]["adce"].mean) < 0.5

    # Unroll: AMD biggest (no driver unroll), Intel/NVIDIA/Qualcomm ~0.
    assert impacts["AMD"]["unroll"].mean > 3.0
    assert impacts["AMD"]["unroll"].trough > -1.0, "unroll never hurts on AMD"
    assert abs(impacts["Intel"]["unroll"].mean) < 1.0
    assert impacts["ARM"]["unroll"].peak > 20.0, "unroll is ARM's best flag"

    # FP reassociation: ARM (vector ISA) has the deepest trough and the
    # weakest mean of the five platforms.
    arm_fp = impacts["ARM"]["fp_reassociate"]
    for platform in ("Intel", "AMD", "NVIDIA"):
        fp = impacts[platform]["fp_reassociate"]
        assert fp.mean > 0.5
        assert arm_fp.trough < fp.trough
        assert arm_fp.mean < fp.mean

    # GVN: gains only on Qualcomm.
    assert impacts["Qualcomm"]["gvn"].peak > 2.0
    for platform in ("Intel", "AMD", "NVIDIA"):
        assert abs(impacts[platform]["gvn"].mean) < 0.5

    # Hoist: pathological troughs everywhere.
    for platform in study.platforms:
        assert impacts[platform]["hoist"].trough < -5.0
